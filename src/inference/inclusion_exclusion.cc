#include "inference/inclusion_exclusion.h"

#include <cassert>

#include "common/bits.h"

namespace butterfly {

namespace {

// Builds the itemset I ∪ {items of D selected by mask}.
Itemset Compose(const Itemset& base, const Itemset& extension, uint32_t mask) {
  std::vector<Item> items(base.items());
  for (size_t b = 0; b < extension.size(); ++b) {
    if (mask & (1u << b)) items.push_back(extension[b]);
  }
  return Itemset(std::move(items));
}

}  // namespace

std::vector<Itemset> EnumerateLattice(const Itemset& sub, const Itemset& super) {
  assert(sub.IsSubsetOf(super));
  Itemset free_items = super.Minus(sub);
  assert(free_items.size() < 31);
  std::vector<Itemset> lattice;
  lattice.reserve(1u << free_items.size());
  for (uint32_t mask = 0; mask < (1u << free_items.size()); ++mask) {
    lattice.push_back(Compose(sub, free_items, mask));
  }
  return lattice;
}

namespace {

template <typename Value, typename Provider>
std::optional<Value> DeriveImpl(const Provider& known, const Pattern& pattern) {
  const Itemset& base = pattern.positive();
  const Itemset& negated = pattern.negated();
  assert(negated.size() < 31);
  Value total = 0;
  for (uint32_t mask = 0; mask < (1u << negated.size()); ++mask) {
    auto support = known(Compose(base, negated, mask));
    if (!support) return std::nullopt;
    int sign = EvenParity(mask) ? 1 : -1;
    total += sign * *support;
  }
  return total;
}

}  // namespace

std::optional<Support> DerivePatternSupport(const SupportProvider& known,
                                            const Pattern& pattern) {
  return DeriveImpl<Support>(known, pattern);
}

std::optional<double> DerivePatternEstimate(const RealSupportProvider& known,
                                            const Pattern& pattern) {
  return DeriveImpl<double>(known, pattern);
}

Interval EstimateItemsetBounds(const SupportProvider& known, const Itemset& j) {
  assert(j.size() >= 1 && j.size() < 20);
  const uint32_t full = (1u << j.size()) - 1;

  // Cache subset supports by mask; -1 marks unknown.
  std::vector<Support> cache(full + 1, -1);
  std::vector<bool> available(full + 1, false);
  for (uint32_t mask = 0; mask < full; ++mask) {  // strict subsets only
    auto support = known(Compose({}, j, mask));
    if (support) {
      cache[mask] = *support;
      available[mask] = true;
    }
  }

  Interval bound = Interval::Unbounded();
  // Anchor the inclusion-exclusion bound at every strict subset I of J.
  for (uint32_t anchor = 0; anchor < full; ++anchor) {
    uint32_t free_bits = full & ~anchor;
    // The bound needs every X with I ⊆ X ⊂ J; walk supersets of anchor.
    bool complete = true;
    Support sigma = 0;
    // Enumerate subsets s of free_bits; X = anchor | s, excluding X == full.
    uint32_t s = free_bits;
    while (true) {
      uint32_t x = anchor | s;
      if (x != full) {
        if (!available[x]) {
          complete = false;
          break;
        }
        // Sign (−1)^{|J\X|+1}: positive when J\X has odd size.
        int missing = PopCount(full & ~x);
        sigma += (missing % 2 == 1) ? cache[x] : -cache[x];
      }
      if (s == 0) break;
      s = (s - 1) & free_bits;
    }
    if (!complete) continue;

    int distance = PopCount(free_bits);  // |J \ I|
    if (distance % 2 == 1) {
      bound.hi = std::min(bound.hi, sigma);
    } else {
      bound.lo = std::max(bound.lo, sigma);
    }
  }
  return bound.ClampNonNegative();
}

}  // namespace butterfly
