#include "inference/ndi.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "inference/inclusion_exclusion.h"

namespace butterfly {

namespace {

SupportProvider MapProvider(
    const std::unordered_map<Itemset, Support, ItemsetHash>& known,
    Support universe_size) {
  return [&known, universe_size](const Itemset& s) -> std::optional<Support> {
    if (s.empty()) return universe_size;
    auto it = known.find(s);
    if (it == known.end()) return std::nullopt;
    return it->second;
  };
}

}  // namespace

Interval DerivabilityBounds(const MiningOutput& known, const Itemset& itemset,
                            Support universe_size) {
  SupportProvider provider =
      [&known, universe_size](const Itemset& s) -> std::optional<Support> {
    if (s.empty()) return universe_size;
    return known.SupportOf(s);
  };
  return EstimateItemsetBounds(provider, itemset);
}

MiningOutput FilterNonDerivable(const MiningOutput& all_frequent,
                                Support universe_size) {
  MiningOutput ndi(all_frequent.min_support());
  for (const FrequentItemset& f : all_frequent.itemsets()) {
    Interval bound = DerivabilityBounds(all_frequent, f.itemset, universe_size);
    if (!bound.Tight()) {
      ndi.Add(f.itemset, f.support);
    }
  }
  ndi.Seal();
  return ndi;
}

MiningOutput ExpandNonDerivable(const MiningOutput& ndi,
                                Support universe_size) {
  std::unordered_map<Itemset, Support, ItemsetHash> known;
  for (const FrequentItemset& f : ndi.itemsets()) {
    known.emplace(f.itemset, f.support);
  }
  SupportProvider provider = MapProvider(known, universe_size);
  const Support min_support = ndi.min_support();

  // Level 1: every frequent 1-itemset is non-derivable (its only subset
  // bound is [0, universe]), so it is already in `known`.
  std::vector<Itemset> level;
  for (const FrequentItemset& f : ndi.itemsets()) {
    if (f.itemset.size() == 1) level.push_back(f.itemset);
  }
  std::sort(level.begin(), level.end());

  size_t level_size = 1;
  while (!level.empty()) {
    ++level_size;
    std::unordered_set<Itemset, ItemsetHash> level_set(level.begin(),
                                                       level.end());
    std::vector<Itemset> next;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        // Join on a shared (k-1)-prefix; sorted order makes the break valid.
        bool shares_prefix = true;
        for (size_t b = 0; b + 1 < level_size - 1; ++b) {
          if (level[i][b] != level[j][b]) {
            shares_prefix = false;
            break;
          }
        }
        if (!shares_prefix) break;
        Itemset candidate = level[i].Union(level[j]);
        if (candidate.size() != level_size) continue;
        // Apriori prune: all (k-1)-subsets must be frequent (known).
        bool all_subsets = true;
        for (Item item : candidate) {
          if (!level_set.count(candidate.Without(item))) {
            all_subsets = false;
            break;
          }
        }
        if (!all_subsets) continue;

        std::optional<Support> support;
        if (auto in_ndi = ndi.SupportOf(candidate)) {
          support = *in_ndi;
        } else {
          Interval bound = EstimateItemsetBounds(provider, candidate);
          // Not in the NDI: either derivable (tight bound) or infrequent.
          if (bound.Tight() && bound.lo >= min_support) support = bound.lo;
        }
        if (support) {
          known.emplace(candidate, *support);
          next.push_back(candidate);
        }
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    level = std::move(next);
  }

  MiningOutput all(min_support);
  // bfly-lint: allow(unordered-iteration) Seal() sorts before exposure
  for (const auto& [itemset, support] : known) {
    all.Add(itemset, support);
  }
  all.Seal();
  return all;
}

}  // namespace butterfly
