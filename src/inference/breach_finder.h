/// \file breach_finder.h
/// \brief Intra-window privacy-breach enumeration (§IV-B of the paper).
///
/// Given the itemsets a window released (with exact supports), the breach
/// finder plays the adversary: it optionally completes missing lattice nodes
/// whose support is pinned down by tight inclusion-exclusion bounds
/// ("estimating itemset support"), then derives every pattern p = I·¬(J\I)
/// over the known lattice ("deriving pattern support") and reports those
/// whose derived support falls in (0, K] — the hard vulnerable patterns an
/// unprotected release leaks.

#ifndef BUTTERFLY_INFERENCE_BREACH_FINDER_H_
#define BUTTERFLY_INFERENCE_BREACH_FINDER_H_

#include <unordered_map>
#include <vector>

#include "common/pattern.h"
#include "inference/inclusion_exclusion.h"
#include "mining/mining_result.h"

namespace butterfly {

/// Adversary configuration.
struct AttackConfig {
  /// The vulnerable-support threshold K: derived patterns with support in
  /// (0, K] count as hard vulnerable.
  Support vulnerable_support = 5;

  /// Whether the adversary knows the window size H (it is a public system
  /// parameter, so yes by default). Knowing H makes the empty itemset a
  /// lattice node, enabling pure-negation anchors.
  bool knows_window_size = true;

  /// Run the bound-tightening pass that completes unreleased itemsets whose
  /// support is uniquely determined by released subsets.
  bool use_estimation = true;

  /// Lattice enumeration cap: itemsets larger than this are not used as the
  /// enclosing J (the derivation cost is 2^|J| per anchor).
  size_t max_itemset_size = 12;

  /// Total parallelism of the derivation scan (caller + workers); 1 = serial,
  /// 0 = hardware concurrency. The anchors are scanned independently and the
  /// result is sorted, so the output is identical for every value.
  int64_t threads = 1;
};

/// A pattern the adversary managed to pin down exactly.
struct InferredPattern {
  Pattern pattern;
  Support inferred_support = 0;
  /// True if inferring it required the estimation pass (incomplete lattice).
  bool via_estimation = false;

  bool operator==(const InferredPattern& other) const = default;
};

/// The adversary's working knowledge: itemset -> exactly known support.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// Seeds knowledge from a released output; adds the empty itemset with
  /// support \p window_size when the config says H is public.
  KnowledgeBase(const MiningOutput& released, Support window_size,
                const AttackConfig& config);

  /// Records (or overwrites) an exactly known support. \p inferred marks
  /// knowledge the adversary worked out (estimation, inter-window) rather
  /// than read off the release.
  void Learn(const Itemset& itemset, Support support, bool inferred = false);

  std::optional<Support> Lookup(const Itemset& itemset) const;

  /// True iff the itemset's support was inferred rather than released.
  bool WasInferred(const Itemset& itemset) const;

  /// Adapter for the inclusion-exclusion routines.
  SupportProvider AsProvider() const;

  /// All itemsets with exactly known support (including learned ones).
  const std::vector<Itemset>& known_itemsets() const { return order_; }

  size_t size() const { return order_.size(); }

 private:
  struct Entry {
    Support support = 0;
    bool inferred = false;
  };
  std::unordered_map<Itemset, Entry, ItemsetHash> supports_;
  std::vector<Itemset> order_;
};

/// One pass of "estimating itemset support": for every unreleased candidate
/// J = X ∪ {i} (X known, i a known 1-item), compute inclusion-exclusion
/// bounds from the knowledge base; tight bounds become new knowledge.
/// Returns the number of itemsets learned. Iterate to a fixpoint if desired.
size_t TightenKnowledge(KnowledgeBase* knowledge, const AttackConfig& config);

/// Derivation stage shared by the intra- and inter-window attacks: derives
/// every pattern over every known lattice and returns the hard vulnerable
/// ones (derived support in (0, K]), deterministically ordered.
std::vector<InferredPattern> DeriveBreaches(const KnowledgeBase& knowledge,
                                            const AttackConfig& config);

/// Full intra-window attack: estimation passes (until fixpoint, if enabled),
/// then derivation of every pattern over every known lattice. Returns the
/// hard vulnerable patterns (derived support in (0, K]), deduplicated,
/// deterministically ordered.
std::vector<InferredPattern> FindIntraWindowBreaches(
    const MiningOutput& released, Support window_size,
    const AttackConfig& config);

}  // namespace butterfly

#endif  // BUTTERFLY_INFERENCE_BREACH_FINDER_H_
