/// \file interval_tightening.h
/// \brief Constraint propagation over interval-valued support knowledge.
///
/// Prior Knowledge 3 (§V-C.2): an adversary may hold *partial* knowledge —
/// supports known only up to an interval (published statistics, knowledge
/// points, perturbed observations bounded by the uncertainty region). This
/// module propagates the inclusion-exclusion system over such knowledge:
/// every itemset's interval is intersected with the sound bounds implied by
/// its subsets' intervals (and with plain monotonicity against supersets),
/// iterated to a fixpoint. It is the interval generalization of
/// EstimateItemsetBounds and the engine behind knowledge-point evaluations.

#ifndef BUTTERFLY_INFERENCE_INTERVAL_TIGHTENING_H_
#define BUTTERFLY_INFERENCE_INTERVAL_TIGHTENING_H_

#include <unordered_map>

#include "common/interval.h"
#include "common/itemset.h"

namespace butterfly {

/// Interval-valued support knowledge: itemset -> sound bounds on its support.
using IntervalMap = std::unordered_map<Itemset, Interval, ItemsetHash>;

/// The inclusion-exclusion bound on T(target) given interval knowledge of
/// its strict subsets. A bound anchored at subset I applies only when every
/// X with I ⊆ X ⊂ target is present in \p knowledge; the empty itemset must
/// be in the map (e.g. Interval::Exact(window size)) for ∅-anchored bounds.
/// The result is NOT intersected with any existing entry for the target.
Interval BoundFromIntervals(const IntervalMap& knowledge,
                            const Itemset& target);

/// Statistics of one tightening run.
struct TighteningStats {
  size_t rounds = 0;            ///< fixpoint iterations executed
  size_t intervals_narrowed = 0;  ///< entries whose width strictly shrank
  size_t now_tight = 0;         ///< entries that ended up pinned to a point
  bool contradiction = false;   ///< some interval became empty (inconsistent knowledge)
};

/// Iteratively tightens every interval in \p knowledge using (i) the
/// inclusion-exclusion bounds over subsets and (ii) monotonicity against
/// both subsets and supersets, until a fixpoint or \p max_rounds.
TighteningStats TightenIntervals(IntervalMap* knowledge, size_t max_rounds = 8);

}  // namespace butterfly

#endif  // BUTTERFLY_INFERENCE_INTERVAL_TIGHTENING_H_
