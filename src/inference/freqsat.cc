#include "inference/freqsat.h"

#include <algorithm>
#include <cassert>

#include "common/bits.h"

namespace butterfly {

Support FreqSatWitness::SupportOf(const Itemset& itemset) const {
  Support total = 0;
  for (const auto& [type, count] : type_counts) {
    if (type.ContainsAll(itemset)) total += count;
  }
  return total;
}

Support FreqSatWitness::PatternSupportOf(const Pattern& pattern) const {
  Support total = 0;
  for (const auto& [type, count] : type_counts) {
    if (pattern.SatisfiedBy(type)) total += count;
  }
  return total;
}

namespace {

// The search state: supports indexed by subset mask, assigned level-wise.
class WitnessSearch {
 public:
  WitnessSearch(const WitnessQuery& query, const Pattern* target)
      : query_(query), target_(target), m_(query.universe.size()) {
    full_ = (1u << m_) - 1;
    supports_.assign(full_ + 1, 0);
    supports_[0] = query.num_records;

    // Assignment order: level-wise (all subsets of size k before size k+1).
    for (size_t size = 1; size <= m_; ++size) {
      for (uint32_t mask = 1; mask <= full_; ++mask) {
        if (static_cast<size_t>(PopCount(mask)) == size) {
          order_.push_back(mask);
        }
      }
    }
  }

  WitnessReport Run() {
    Assign(0);
    report_.exhausted = steps_ <= query_.max_steps;
    return std::move(report_);
  }

 private:
  Itemset MaskToItemset(uint32_t mask) const {
    std::vector<Item> items;
    for (size_t b = 0; b < m_; ++b) {
      if (mask & (1u << b)) items.push_back(query_.universe[b]);
    }
    return Itemset::FromSorted(std::move(items));
  }

  // Inclusion-exclusion bounds for `mask` from the already-assigned strict
  // subsets (all of them are assigned, by level order).
  Interval SubsetBounds(uint32_t mask) const {
    Interval bound(0, query_.num_records);
    uint32_t free_full = mask;
    // Anchor at every strict subset I of mask.
    uint32_t anchor = (mask - 1) & mask;
    while (true) {
      uint32_t free_bits = mask & ~anchor;
      Support sigma = 0;
      uint32_t s = free_bits;
      while (true) {
        uint32_t x = anchor | s;
        if (x != mask) {
          int missing = PopCount(mask & ~x);
          sigma += (missing % 2 == 1) ? supports_[x] : -supports_[x];
        }
        if (s == 0) break;
        s = (s - 1) & free_bits;
      }
      int distance = PopCount(free_bits);
      if (distance % 2 == 1) {
        bound.hi = std::min(bound.hi, sigma);
      } else {
        bound.lo = std::max(bound.lo, sigma);
      }
      if (anchor == 0) break;
      anchor = (anchor - 1) & mask;
    }
    (void)free_full;
    return bound;
  }

  // All 2^m record-type counts by Möbius inversion; nullopt on negativity.
  std::optional<std::vector<Support>> TypeCounts() const {
    std::vector<Support> counts(full_ + 1, 0);
    for (uint32_t r = 0; r <= full_; ++r) {
      Support count = 0;
      // count(R) = Σ_{S ⊇ R} (−1)^{|S\R|} T(S).
      uint32_t free_bits = full_ & ~r;
      uint32_t s = free_bits;
      while (true) {
        uint32_t x = r | s;
        count += EvenParity(s) ? supports_[x] : -supports_[x];
        if (s == 0) break;
        s = (s - 1) & free_bits;
      }
      if (count < 0) return std::nullopt;
      counts[r] = count;
    }
    return counts;
  }

  void RecordWitness(const std::vector<Support>& counts) {
    ++report_.witnesses;
    FreqSatWitness witness;
    for (uint32_t r = 0; r <= full_; ++r) {
      if (counts[r] > 0) {
        witness.type_counts.emplace_back(MaskToItemset(r), counts[r]);
      }
    }
    if (!report_.example) report_.example = witness;
    if (target_ && !report_.zero_witness &&
        witness.PatternSupportOf(*target_) == 0) {
      report_.zero_witness = std::move(witness);
    }
  }

  void Assign(size_t depth) {
    if (steps_ > query_.max_steps) return;
    if (depth == order_.size()) {
      if (auto counts = TypeCounts()) RecordWitness(*counts);
      return;
    }
    uint32_t mask = order_[depth];
    Interval allowed = SubsetBounds(mask);
    auto it = query_.constraints.find(MaskToItemset(mask));
    if (it != query_.constraints.end()) {
      allowed = allowed.IntersectWith(it->second);
    }
    for (Support v = allowed.lo; v <= allowed.hi; ++v) {
      if (++steps_ > query_.max_steps) return;
      supports_[mask] = v;
      Assign(depth + 1);
    }
    supports_[mask] = 0;
  }

  const WitnessQuery& query_;
  const Pattern* target_;
  size_t m_;
  uint32_t full_ = 0;
  std::vector<uint32_t> order_;
  std::vector<Support> supports_;
  size_t steps_ = 0;
  WitnessReport report_;
};

}  // namespace

WitnessReport CountSupportWitnesses(const WitnessQuery& query,
                                    const Pattern* target_pattern) {
  assert(query.universe.size() >= 1 && query.universe.size() <= 12);
  WitnessSearch search(query, target_pattern);
  return search.Run();
}

}  // namespace butterfly
