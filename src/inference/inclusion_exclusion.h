/// \file inclusion_exclusion.h
/// \brief The inclusion-exclusion machinery both attack techniques build on.
///
/// For itemsets I ⊆ J, the lattice X_I^J = {X | I ⊆ X ⊆ J} relates the
/// support of the pattern p = I·¬(J\I) to itemset supports:
///
///   T(p) = Σ_{X ∈ X_I^J} (−1)^{|X\I|} T(X)
///
/// Given every lattice node's support this *derives* the pattern support
/// exactly; given all nodes but J it *bounds* T(J) from above/below.

#ifndef BUTTERFLY_INFERENCE_INCLUSION_EXCLUSION_H_
#define BUTTERFLY_INFERENCE_INCLUSION_EXCLUSION_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/interval.h"
#include "common/itemset.h"
#include "common/pattern.h"
#include "common/types.h"

namespace butterfly {

/// What the adversary knows: a partial map from itemsets to support. Returns
/// nullopt for itemsets whose support was not released and not yet inferred.
/// The empty itemset's support is the window size, which implementations
/// should answer if the window size is public.
using SupportProvider = std::function<std::optional<Support>(const Itemset&)>;

/// Real-valued variant, for estimating through perturbed (sanitized) outputs.
using RealSupportProvider = std::function<std::optional<double>(const Itemset&)>;

/// Enumerates the lattice X_I^J (requires I ⊆ J). Mostly for tests and the
/// examples; the derivation below enumerates in place without materializing.
std::vector<Itemset> EnumerateLattice(const Itemset& sub, const Itemset& super);

/// Derives T(p) for p = positive·¬negated by inclusion-exclusion. Returns
/// nullopt if any lattice node's support is unavailable.
std::optional<Support> DerivePatternSupport(const SupportProvider& known,
                                            const Pattern& pattern);

/// Same derivation over real-valued supports (the adversary's estimator
/// through sanitized outputs: plug in E[T(X) | released value]).
std::optional<double> DerivePatternEstimate(const RealSupportProvider& known,
                                            const Pattern& pattern);

/// Bounds T(J) from the supports of strict subsets of J, intersecting every
/// applicable inclusion-exclusion bound (the non-derivable-itemsets bounds of
/// Calders & Goethals). A bound anchored at subset I applies only when every
/// X with I ⊆ X ⊂ J is known. The result is clamped to [0, +inf) and, when
/// no bound applies at all, is Interval::Unbounded() clamped by any known
/// single-subset upper bounds.
Interval EstimateItemsetBounds(const SupportProvider& known, const Itemset& j);

}  // namespace butterfly

#endif  // BUTTERFLY_INFERENCE_INCLUSION_EXCLUSION_H_
