/// \file butterfly.h
/// \brief Umbrella header: the full public API of the Butterfly library.
///
/// Most applications only need StreamPrivacyEngine (mining + sanitization in
/// one pipeline); power users can compose the pieces directly.

#ifndef BUTTERFLY_BUTTERFLY_H_
#define BUTTERFLY_BUTTERFLY_H_

// Foundations.
#include "common/classification.h"
#include "common/flags.h"
#include "common/interval.h"
#include "common/itemset.h"
#include "common/pattern.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/transaction.h"
#include "common/types.h"

// Streams and data.
#include "datagen/drift.h"
#include "datagen/fimi_io.h"
#include "datagen/profiles.h"
#include "datagen/quest_generator.h"
#include "stream/sliding_window.h"
#include "stream/transaction_source.h"
#include "stream/window_driver.h"

// Mining substrates.
#include "mining/apriori.h"
#include "mining/closed.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "mining/maximal.h"
#include "mining/rules.h"
#include "mining/support.h"
#include "moment/moment.h"
#include "moment/recompute_miner.h"

// The adversary.
#include "inference/breach_finder.h"
#include "inference/freqsat.h"
#include "inference/inclusion_exclusion.h"
#include "inference/interval_tightening.h"
#include "inference/interwindow.h"
#include "inference/ndi.h"

// Butterfly itself.
#include "core/butterfly.h"
#include "core/config.h"
#include "core/noise.h"
#include "core/parameter_advisor.h"
#include "core/release_log.h"
#include "core/rule_release.h"
#include "core/stream_engine.h"

// Evaluation.
#include "metrics/auditor.h"
#include "metrics/privacy_metrics.h"
#include "metrics/sanitized_attack.h"
#include "metrics/timing.h"
#include "metrics/topk.h"
#include "metrics/utility_metrics.h"

#endif  // BUTTERFLY_BUTTERFLY_H_
