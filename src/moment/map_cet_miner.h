/// \file map_cet_miner.h
/// \brief The pre-arena Moment implementation, preserved verbatim in spirit:
/// one heap-allocated CET node per itemset, `std::map` children and extension
/// counts, and support (re)counting by scanning window transactions.
///
/// This is NOT the production miner — MomentMiner (moment.h) replaced it with
/// a vertical-bitmap window index and an arena CET. It is kept for two jobs:
///
///  * differential oracle: the randomized equivalence suites pin MomentMiner
///    bit-identical (same closed itemsets, same supports, same canonical
///    order) to this implementation across window slides;
///  * bench baseline: the micro_miners bitmap-vs-map comparison quantifies
///    what the index + arena bought.

#ifndef BUTTERFLY_MOMENT_MAP_CET_MINER_H_
#define BUTTERFLY_MOMENT_MAP_CET_MINER_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/transaction.h"
#include "mining/mining_result.h"
#include "stream/sliding_window.h"

namespace butterfly {

/// Map-based incremental closed-frequent-itemset miner (legacy layout).
class MapCetMiner {
 public:
  /// \param window_capacity the window size H (> 0).
  /// \param min_support the minimum support C (> 0).
  MapCetMiner(size_t window_capacity, Support min_support);
  ~MapCetMiner();

  MapCetMiner(const MapCetMiner&) = delete;
  MapCetMiner& operator=(const MapCetMiner&) = delete;
  MapCetMiner(MapCetMiner&&) noexcept;
  MapCetMiner& operator=(MapCetMiner&&) noexcept;

  /// Appends the next stream record, expiring the oldest if the window is
  /// full, and updates the CET incrementally.
  void Append(Transaction t);

  Support min_support() const { return min_support_; }
  const SlidingWindow& window() const { return window_; }

  /// The closed frequent itemsets of the current window, with exact supports.
  MiningOutput GetClosedFrequent() const;

  /// All frequent itemsets of the current window (closed set expanded).
  MiningOutput GetAllFrequent() const;

  /// Deep self-check (see MomentMiner::Validate).
  Status Validate() const;

 private:
  struct CetNode;

  void UpdateAdd(CetNode* node, const Transaction& t);
  /// Returns true if the node should be removed from its parent.
  bool UpdateDelete(CetNode* node, const Transaction& t);

  void Explore(CetNode* node,
               const std::vector<const Transaction*>& containing);
  void ExpandFromCounts(CetNode* node,
                        const std::vector<const Transaction*>& containing);
  static void RecomputeClosed(CetNode* node);
  static bool HasUnpromisingBlocker(const CetNode& node);
  std::vector<const Transaction*> RecordsContaining(
      const Itemset& itemset) const;

  SlidingWindow window_;
  Support min_support_;
  std::unique_ptr<CetNode> root_;
};

}  // namespace butterfly

#endif  // BUTTERFLY_MOMENT_MAP_CET_MINER_H_
