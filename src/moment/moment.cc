#include "moment/moment.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "mining/closed.h"
#include "persist/serializer.h"

namespace butterfly {

namespace {
constexpr uint32_t kMinerTag = persist::SectionTag('C', 'E', 'T', 'M');
constexpr uint32_t kArenaTag = persist::SectionTag('A', 'R', 'E', 'N');
}  // namespace

/// One arena slot. Links are arena indices, never pointers: the pool may
/// reallocate while a subtree is being built. Child and extension-count
/// arrays are flat and sorted by item — the same ascending order the legacy
/// std::map layout iterated in, which keeps the mined output bit-identical.
struct MomentMiner::CetNode {
  struct ExtCount {
    Item item;
    Support count;
  };
  struct ChildEntry {
    Item item;
    uint32_t node;
  };

  Itemset itemset;
  Item branch_item = kInvalidItem;  // invalid for the root
  Support support = 0;

  /// True for frequent nodes carrying extension counts (and for the root,
  /// which is always maintained); false for infrequent gateway leaves.
  bool frequent_explored = false;
  bool unpromising = false;  // unpromising gateway leaf
  bool closed = false;

  /// j -> T(I ∪ {j}) for every item j outside I co-occurring with I.
  std::vector<ExtCount> ext_counts;
  /// Children keyed by branch item (> branch_item); empty for leaves.
  std::vector<ChildEntry> children;

  bool is_root() const { return branch_item == kInvalidItem; }

  /// Index into children for \p item, or npos.
  size_t FindChild(Item item) const {
    auto it = std::lower_bound(
        children.begin(), children.end(), item,
        [](const ChildEntry& e, Item j) { return e.item < j; });
    if (it == children.end() || it->item != item) return npos;
    return static_cast<size_t>(it - children.begin());
  }

  /// Extension count of \p item; the entry must exist.
  Support ExtCountOf(Item item) const {
    auto it = std::lower_bound(
        ext_counts.begin(), ext_counts.end(), item,
        [](const ExtCount& e, Item j) { return e.item < j; });
    assert(it != ext_counts.end() && it->item == item);
    return it->count;
  }

  static constexpr size_t npos = static_cast<size_t>(-1);
};

MomentMiner::MomentMiner(size_t window_capacity, Support min_support,
                         IndexRowStore row_store)
    : window_(window_capacity),
      min_support_(min_support),
      index_(window_capacity, row_store) {
  assert(min_support > 0);
  arena_.emplace_back();  // the root, index kRoot
  arena_[kRoot].frequent_explored = true;
}

MomentMiner::~MomentMiner() = default;

MomentMiner::CetNode& MomentMiner::N(uint32_t idx) { return arena_[idx]; }
const MomentMiner::CetNode& MomentMiner::N(uint32_t idx) const {
  return arena_[idx];
}

MomentMiner::MomentMiner(MomentMiner&&) noexcept = default;
MomentMiner& MomentMiner::operator=(MomentMiner&&) noexcept = default;

uint32_t MomentMiner::AllocNode() {
  uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    // Free-list integrity: a pooled index must address an existing slot and
    // never resurrect the root.
    BFLY_DCHECK_MSG(idx != kRoot && idx < arena_.size(),
                    "corrupt arena free list");
  } else {
    idx = checked_cast<uint32_t>(arena_.size());
    arena_.emplace_back();
  }
  CetNode& node = arena_[idx];
  node.branch_item = kInvalidItem;
  node.support = 0;
  node.frequent_explored = false;
  node.unpromising = false;
  node.closed = false;
  BFLY_DCHECK_MSG(node.ext_counts.empty() && node.children.empty(),
                  "recycled CET node still owns links");
  return idx;
}

void MomentMiner::FreeNode(uint32_t idx) {
  BFLY_DCHECK_MSG(idx != kRoot, "attempt to free the CET root");
  BFLY_DCHECK_MSG(idx < arena_.size(), "free of an index outside the arena");
  CetNode& node = arena_[idx];
  BFLY_DCHECK_MSG(node.children.empty(),
                  "freeing a CET node that still has children");
  node.ext_counts.clear();  // clear() keeps capacity for the next tenant
  free_.push_back(idx);
}

void MomentMiner::FreeChildren(uint32_t idx) {
  CetNode& node = arena_[idx];
  for (const CetNode::ChildEntry& entry : node.children) {
    FreeChildren(entry.node);
    FreeNode(entry.node);
  }
  node.children.clear();
}

void MomentMiner::Append(Transaction t) {
  // Slide the window (and its bitmap mirror) first: the exploration paths
  // query the index, so it must already reflect the post-slide contents when
  // the tree update runs. The expiry path never explores (expiries cannot
  // promote nodes), so processing it against the already-slid state is sound.
  std::optional<Transaction> evicted = window_.Append(std::move(t));
  const Transaction& added = window_.transactions().back();
  index_.Apply(&added, evicted ? &*evicted : nullptr);
  if (evicted) UpdateDelete(kRoot, *evicted);
  UpdateAdd(kRoot, added);
  expansion_dirty_ = true;
}

Bitmap& MomentMiner::ScratchAt(size_t depth) {
  while (tidset_scratch_.size() <= depth) tidset_scratch_.emplace_back();
  return tidset_scratch_[depth];
}

bool MomentMiner::HasUnpromisingBlocker(const CetNode& node) {
  if (node.is_root()) return false;
  for (const CetNode::ExtCount& ec : node.ext_counts) {
    if (ec.item >= node.branch_item) break;  // array is sorted
    if (ec.count == node.support) return true;
  }
  return false;
}

void MomentMiner::RecomputeClosed(CetNode* node) {
  for (const CetNode::ExtCount& ec : node->ext_counts) {
    if (ec.count == node->support) {
      node->closed = false;
      return;
    }
  }
  node->closed = true;
}

void MomentMiner::BuildExtCounts(uint32_t idx, size_t depth) {
  if (count_scratch_.size() < index_.dense_limit()) {
    count_scratch_.resize(index_.dense_limit(), 0);
  }
  touched_scratch_.clear();
  CetNode& node = N(idx);  // stable: nothing below allocates arena nodes
  const Itemset& self = node.itemset;
  tidset_scratch_[depth].ForEachSetBit([&](size_t slot) {
    const Transaction* t = index_.transaction(slot);
    size_t si = 0;  // merge pointer into the (sorted) own itemset
    for (Item j : t->items) {
      while (si < self.size() && self[si] < j) ++si;
      if (si < self.size() && self[si] == j) continue;
      const uint32_t dense = index_.DenseId(j);
      assert(dense != ItemRemap::kNone);
      if (count_scratch_[dense]++ == 0) touched_scratch_.push_back(j);
    }
  });
  std::sort(touched_scratch_.begin(), touched_scratch_.end());
  node.ext_counts.clear();
  if (node.ext_counts.capacity() < touched_scratch_.size()) {
    node.ext_counts.reserve(touched_scratch_.size());
  }
  for (Item j : touched_scratch_) {
    const uint32_t dense = index_.DenseId(j);
    node.ext_counts.push_back({j, count_scratch_[dense]});
    count_scratch_[dense] = 0;  // leave the scratch zeroed for the next use
  }
}

void MomentMiner::Explore(uint32_t idx, size_t depth) {
  {
    CetNode& node = N(idx);
    node.frequent_explored = true;
    node.unpromising = false;
    node.closed = false;
    assert(node.support ==
           static_cast<Support>(tidset_scratch_[depth].Popcount()));
    if (!node.children.empty()) FreeChildren(idx);
  }
  BuildExtCounts(idx, depth);
  if (HasUnpromisingBlocker(N(idx))) {
    N(idx).unpromising = true;
    return;
  }
  ExpandFromCounts(idx, depth);
}

void MomentMiner::ExpandFromCounts(uint32_t idx, size_t depth) {
  assert(N(idx).children.empty());
  // Children materialize in ascending item order (ext_counts is sorted), so
  // the child array is appended, never inserted into. Entries are re-read
  // through N() each round: Explore below may grow the arena.
  for (size_t k = 0; k < N(idx).ext_counts.size(); ++k) {
    const CetNode::ExtCount ec = N(idx).ext_counts[k];
    if (!N(idx).is_root() && ec.item < N(idx).branch_item) continue;
    const uint32_t child_idx = AllocNode();
    {
      CetNode& child = N(child_idx);
      child.itemset.AssignWith(N(idx).itemset, ec.item);
      child.branch_item = ec.item;
      child.support = ec.count;
    }
    if (ec.count >= min_support_) {
      Bitmap& child_tidset = ScratchAt(depth + 1);
      const Support refined =
          index_.Refine(tidset_scratch_[depth], ec.item, &child_tidset);
      assert(refined == ec.count);
      (void)refined;
      Explore(child_idx, depth + 1);
    }
    N(idx).children.push_back({ec.item, child_idx});
  }
  RecomputeClosed(&N(idx));
}

void MomentMiner::MergeAddExtCounts(CetNode* node, const Transaction& t) {
  std::vector<CetNode::ExtCount>& ec = node->ext_counts;
  const Itemset& self = node->itemset;
  missing_scratch_.clear();
  size_t si = 0;  // merge pointer into the own itemset
  size_t e = 0;   // merge pointer into ext_counts (both ascend with j)
  for (Item j : t.items) {
    while (si < self.size() && self[si] < j) ++si;
    if (si < self.size() && self[si] == j) continue;
    while (e < ec.size() && ec[e].item < j) ++e;
    if (e < ec.size() && ec[e].item == j) {
      ++ec[e].count;
    } else {
      missing_scratch_.push_back(j);  // first co-occurrence in the window
    }
  }
  if (missing_scratch_.empty()) return;
  // Backward in-place merge of the new items (count 1 each).
  const size_t old_size = ec.size();
  ec.resize(old_size + missing_scratch_.size());
  ptrdiff_t read = static_cast<ptrdiff_t>(old_size) - 1;
  ptrdiff_t write = static_cast<ptrdiff_t>(ec.size()) - 1;
  ptrdiff_t m = static_cast<ptrdiff_t>(missing_scratch_.size()) - 1;
  while (m >= 0) {
    if (read >= 0 && ec[read].item > missing_scratch_[m]) {
      ec[write--] = ec[read--];
    } else {
      ec[write--] = {missing_scratch_[m--], 1};
    }
  }
}

void MomentMiner::MergeSubExtCounts(CetNode* node, const Transaction& t) {
  std::vector<CetNode::ExtCount>& ec = node->ext_counts;
  const Itemset& self = node->itemset;
  size_t si = 0;
  size_t e = 0;
  bool zeroed = false;
  for (Item j : t.items) {
    while (si < self.size() && self[si] < j) ++si;
    if (si < self.size() && self[si] == j) continue;
    while (e < ec.size() && ec[e].item < j) ++e;
    assert(e < ec.size() && ec[e].item == j);
    if (--ec[e].count == 0) zeroed = true;
  }
  if (zeroed) {
    ec.erase(std::remove_if(
                 ec.begin(), ec.end(),
                 [](const CetNode::ExtCount& c) { return c.count == 0; }),
             ec.end());
  }
}

void MomentMiner::UpdateAdd(uint32_t idx, const Transaction& t) {
  {
    CetNode& node = N(idx);
    ++node.support;

    if (!node.frequent_explored) {
      // Infrequent gateway: promote once it crosses the threshold.
      if (node.support >= min_support_) {
        const size_t depth = node.itemset.size();
        const Support support = index_.Tidset(node.itemset, &ScratchAt(depth));
        assert(support == node.support);
        (void)support;
        Explore(idx, depth);
      }
      return;
    }

    MergeAddExtCounts(&node, t);

    if (node.unpromising) {
      // Arrivals can only break blockers (a blocker item occurs in every
      // record containing I, hence also in t, so equalities survive unless
      // broken).
      if (!HasUnpromisingBlocker(node)) {
        node.unpromising = false;
        const size_t depth = node.itemset.size();
        const Support support = index_.Tidset(node.itemset, &ScratchAt(depth));
        assert(support == node.support);
        (void)support;
        ExpandFromCounts(idx, depth);
      }
      return;
    }
  }

  // Recursion below may grow the arena, so the node is re-read through N()
  // after every step that can allocate.
  for (Item j : t.items) {
    if (N(idx).itemset.Contains(j)) continue;
    if (!N(idx).is_root() && j < N(idx).branch_item) continue;
    const size_t pos = N(idx).FindChild(j);
    if (pos != CetNode::npos) {
      UpdateAdd(N(idx).children[pos].node, t);
    } else {
      // First co-occurrence of I with j in the window: new boundary child.
      const Support child_support = N(idx).ExtCountOf(j);
      const uint32_t child_idx = AllocNode();
      {
        CetNode& child = N(child_idx);
        child.itemset.AssignWith(N(idx).itemset, j);
        child.branch_item = j;
        child.support = child_support;
      }
      if (child_support >= min_support_) {
        const size_t depth = N(child_idx).itemset.size();
        const Support support =
            index_.Tidset(N(child_idx).itemset, &ScratchAt(depth));
        assert(support == child_support);
        (void)support;
        Explore(child_idx, depth);
      }
      CetNode& node = N(idx);
      std::vector<CetNode::ChildEntry>& children = node.children;
      children.insert(
          std::upper_bound(
              children.begin(), children.end(), j,
              [](Item item, const CetNode::ChildEntry& e) {
                return item < e.item;
              }),
          {j, child_idx});
    }
  }
  RecomputeClosed(&N(idx));
}

bool MomentMiner::UpdateDelete(uint32_t idx, const Transaction& t) {
  // The delete path never allocates arena nodes, so references stay valid.
  CetNode& node = N(idx);
  --node.support;

  if (!node.frequent_explored) {
    return node.support == 0 && !node.is_root();
  }

  MergeSubExtCounts(&node, t);

  if (!node.is_root() && node.support < min_support_) {
    // Demote to infrequent gateway; the subtree dissolves into the pool.
    FreeChildren(idx);
    node.ext_counts.clear();
    node.frequent_explored = false;
    node.unpromising = false;
    node.closed = false;
    return node.support == 0;
  }

  if (node.unpromising) {
    // Expiries cannot unblock: a blocker occurs in every record containing I,
    // including the expiring one, so the equality count == support survives.
    return false;
  }

  if (HasUnpromisingBlocker(node)) {
    node.unpromising = true;
    FreeChildren(idx);
    node.closed = false;
    return false;
  }

  for (Item j : t.items) {
    if (node.itemset.Contains(j)) continue;
    if (!node.is_root() && j < node.branch_item) continue;
    const size_t pos = node.FindChild(j);
    if (pos != CetNode::npos) {
      const uint32_t child_idx = node.children[pos].node;
      if (UpdateDelete(child_idx, t)) {
        // The child is a drained gateway leaf (support 0, no subtree).
        FreeNode(child_idx);
        node.children.erase(node.children.begin() +
                            static_cast<ptrdiff_t>(pos));
      }
    }
  }
  RecomputeClosed(&node);
  return false;
}

template <typename Fn>
void MomentMiner::VisitTree(uint32_t idx, const Fn& fn) const {
  const CetNode& node = N(idx);
  fn(node);
  for (const CetNode::ChildEntry& entry : node.children) {
    VisitTree(entry.node, fn);
  }
}

MiningOutput MomentMiner::GetClosedFrequent() const {
  MiningOutput output(min_support_);
  VisitTree(kRoot, [&](const CetNode& node) {
    if (!node.is_root() && node.frequent_explored && !node.unpromising &&
        node.closed) {
      output.Add(node.itemset, node.support);
    }
  });
  output.Seal();
  return output;
}

MiningOutput MomentMiner::GetAllFrequent() const {
  return ExpandClosed(GetClosedFrequent());
}

namespace {

/// Calls fn(subset) for every non-empty subset of `s`.
template <typename Fn>
void ForEachSubset(const Itemset& s, size_t start, std::vector<Item>* prefix,
                   const Fn& fn) {
  if (!prefix->empty()) fn(Itemset::FromSorted(*prefix));
  for (size_t i = start; i < s.size(); ++i) {
    prefix->push_back(s[i]);
    ForEachSubset(s, i + 1, prefix, fn);
    prefix->pop_back();
  }
}

}  // namespace

const MiningOutput& MomentMiner::RebuildExpansionFromScratch(
    MiningOutput closed) {
  // Full expansion, then remember its accumulator. No precise delta exists
  // on this path, so consumers are told to resync.
  cached_all_ = ExpandClosed(closed);
  expansion_best_.clear();
  expansion_best_.reserve(cached_all_.size());
  for (const FrequentItemset& f : cached_all_.itemsets()) {
    expansion_best_.emplace(f.itemset, f.support);
  }
  cached_closed_ = std::move(closed);
  expansion_cached_ = true;
  expansion_delta_.Reset();
  expansion_delta_.rebuilt = true;
  ++expansion_version_;
  return cached_all_;
}

const MiningOutput& MomentMiner::GetAllFrequentIncremental() {
  if (!expansion_dirty_ && expansion_cached_) return cached_all_;
  MiningOutput closed = GetClosedFrequent();
  expansion_dirty_ = false;

  if (!expansion_cached_) {
    return RebuildExpansionFromScratch(std::move(closed));
  }

  // Diff the two sealed (lexicographically sorted) closed outputs; a support
  // change counts as removed + added, so its subsets are re-expanded too.
  std::vector<const Itemset*> changed;
  const auto& old_items = cached_closed_.itemsets();
  const auto& new_items = closed.itemsets();
  size_t o = 0, n = 0;
  while (o < old_items.size() || n < new_items.size()) {
    if (o == old_items.size()) {
      changed.push_back(&new_items[n++].itemset);
    } else if (n == new_items.size()) {
      changed.push_back(&old_items[o++].itemset);
    } else if (old_items[o].itemset < new_items[n].itemset) {
      changed.push_back(&old_items[o++].itemset);
    } else if (new_items[n].itemset < old_items[o].itemset) {
      changed.push_back(&new_items[n++].itemset);
    } else {
      if (old_items[o].support != new_items[n].support) {
        changed.push_back(&new_items[n].itemset);
      }
      ++o;
      ++n;
    }
  }
  if (changed.empty()) {
    cached_closed_ = std::move(closed);
    return cached_all_;
  }

  // Crossover heuristic. Patching recomputes every subset of every changed
  // closed itemset with a scan over the *whole* new closed set (ContainsAll
  // probes, a few ns each), while a scratch re-expansion pays one
  // accumulator update per subset of *every* closed itemset — a subset
  // materialization plus a hash insert plus the final re-sort, worth about
  // kCrossoverScanBudget probes. Patching also keeps its persistent
  // accumulator and (without membership churn) patches the sealed output in
  // place, so it wins whenever its scans stay under that budget; on dense
  // windows (|closed| in the hundreds) with broad drift the |affected| ×
  // |closed| scans blow past it, and falling back to scratch is faster.
  // The fallback publishes a rebuilt delta so mirrors resync.
  constexpr size_t kCrossoverScanBudget = 64;
  auto subsets_of = [](size_t len) {
    // Capped at 2^20 subsets so long itemsets cannot overflow the model.
    return (size_t{1} << std::min<size_t>(len, 20)) - 1;
  };
  size_t patch_subsets = 0;
  for (const Itemset* z : changed) patch_subsets += subsets_of(z->size());
  size_t scratch_subsets = 0;
  for (const FrequentItemset& z : new_items) {
    scratch_subsets += subsets_of(z.itemset.size());
  }
  if (patch_subsets * new_items.size() >
      kCrossoverScanBudget * scratch_subsets) {
    return RebuildExpansionFromScratch(std::move(closed));
  }

  // Only subsets of changed closed itemsets can change value: for any other
  // frequent X, every closed superset of X kept its support, and no closed
  // itemset newly contains X.
  std::unordered_set<Itemset, ItemsetHash> affected;
  std::vector<Item> prefix;
  for (const Itemset* z : changed) {
    ForEachSubset(*z, 0, &prefix,
                  [&](Itemset subset) { affected.insert(std::move(subset)); });
  }
  // The loop below appends to expansion_delta_, whose order downstream
  // mirrors (the FEC partitioner) observe — walk the affected set in sorted
  // order so the delta is identical on every platform and hash seed.
  std::vector<const Itemset*> affected_sorted;
  affected_sorted.reserve(affected.size());
  // bfly-lint: allow(unordered-iteration) materialized and sorted below
  for (const Itemset& x : affected) affected_sorted.push_back(&x);
  std::sort(affected_sorted.begin(), affected_sorted.end(),
            [](const Itemset* a, const Itemset* b) { return *a < *b; });

  // Recompute each affected subset's max over the new closed supersets.
  // Support-only drift is patched into the sealed output in place; itemsets
  // entering or leaving the frequent set force a rebuild from the
  // accumulator (still no global re-expansion). Every realized change is
  // recorded in expansion_delta_ so downstream mirrors can patch too.
  expansion_delta_.Reset();
  bool membership_changed = false;
  for (const Itemset* xp : affected_sorted) {
    const Itemset& x = *xp;
    Support best = 0;
    bool frequent = false;
    for (const FrequentItemset& z : new_items) {
      if (z.itemset.ContainsAll(x)) {
        frequent = true;
        if (z.support > best) best = z.support;
      }
    }
    auto it = expansion_best_.find(x);
    if (frequent) {
      if (it == expansion_best_.end()) {
        expansion_best_.emplace(x, best);
        expansion_delta_.added.emplace_back(x, best);
        membership_changed = true;
      } else if (it->second != best) {
        expansion_delta_.changed.push_back({x, it->second, best});
        if (!membership_changed) cached_all_.UpdateSupport(x, best);
        it->second = best;
      }
    } else if (it != expansion_best_.end()) {
      expansion_delta_.removed.emplace_back(x, it->second);
      expansion_best_.erase(it);
      membership_changed = true;
    }
  }

  if (membership_changed) {
    MiningOutput rebuilt(min_support_);
    // bfly-lint: allow(unordered-iteration) Seal() sorts before exposure
    for (const auto& [itemset, support] : expansion_best_) {
      rebuilt.Add(itemset, support);
    }
    rebuilt.Seal();
    cached_all_ = std::move(rebuilt);
  }
  // The delta above is exact even on the membership path (the output was
  // re-materialized, but only the recorded itemsets changed value), so the
  // version advances only when something actually changed.
  if (!expansion_delta_.Empty()) ++expansion_version_;
  cached_closed_ = std::move(closed);
  return cached_all_;
}

std::optional<Support> MomentMiner::SupportOf(const Itemset& itemset) const {
  std::optional<Support> best;
  VisitTree(kRoot, [&](const CetNode& node) {
    if (node.is_root() || !node.frequent_explored || node.unpromising ||
        !node.closed) {
      return;
    }
    if (node.itemset.ContainsAll(itemset) &&
        (!best || node.support > *best)) {
      best = node.support;
    }
  });
  return best;
}

Status MomentMiner::Validate() const {
  Status index_status = index_.Validate(window_);
  if (!index_status.ok()) return index_status;

  size_t reachable = 0;
  Status failure = Status::OK();
  VisitTree(kRoot, [&](const CetNode& node) {
    ++reachable;
    if (!failure.ok()) return;
    auto fail = [&](const std::string& what) {
      failure = Status::Internal(node.itemset.ToString() + ": " + what);
    };

    // Recount the node's support and extension counts from the window.
    Support support = 0;
    std::map<Item, Support> ext_counts;
    for (const Transaction& t : window_.transactions()) {
      if (!t.items.ContainsAll(node.itemset)) continue;
      ++support;
      for (Item j : t.items) {
        if (!node.itemset.Contains(j)) ++ext_counts[j];
      }
    }
    if (node.support != support) {
      return fail("stored support " + std::to_string(node.support) +
                  " != recounted " + std::to_string(support));
    }

    if (!node.frequent_explored) {
      if (!node.is_root() && node.support >= min_support_) {
        return fail("infrequent gateway at or above the threshold");
      }
      if (!node.children.empty() || !node.ext_counts.empty()) {
        return fail("infrequent gateway carrying children or counts");
      }
      return;
    }

    if (!node.is_root() && node.support < min_support_) {
      return fail("explored node below the threshold");
    }
    if (node.ext_counts.size() != ext_counts.size()) {
      return fail("stale extension counts");
    }
    size_t k = 0;
    for (const auto& [j, count] : ext_counts) {
      if (node.ext_counts[k].item != j || node.ext_counts[k].count != count) {
        return fail("stale extension counts");
      }
      ++k;
    }

    bool blocked = HasUnpromisingBlocker(node);
    if (node.unpromising != blocked) {
      return fail(blocked ? "promising node with a blocker"
                          : "unpromising node without a blocker");
    }
    if (node.unpromising) {
      if (!node.children.empty()) return fail("unpromising node with children");
      return;
    }

    // Children invariant and closedness.
    bool closed = true;
    for (const auto& [j, count] : ext_counts) {
      if (count == node.support) closed = false;
      if (!node.is_root() && j < node.branch_item) continue;
      const size_t pos = node.FindChild(j);
      if (pos == CetNode::npos) {
        return fail("missing child for item " + std::to_string(j));
      }
      if (N(node.children[pos].node).support != count) {
        return fail("child support mismatch for item " + std::to_string(j));
      }
    }
    for (const CetNode::ChildEntry& entry : node.children) {
      if (!ext_counts.count(entry.item)) {
        return fail("child for vanished item " + std::to_string(entry.item));
      }
    }
    if (!node.is_root() && node.closed != closed) {
      return fail(closed ? "closed node not flagged" : "non-closed flagged");
    }
  });
  if (!failure.ok()) return failure;

  // Arena accounting: every pool slot is either reachable or on the free
  // list, with no overlap.
  if (reachable + free_.size() != arena_.size()) {
    return Status::Internal(
        "arena leak: " + std::to_string(reachable) + " reachable + " +
        std::to_string(free_.size()) + " free != pool of " +
        std::to_string(arena_.size()));
  }
  std::unordered_set<uint32_t> free_set(free_.begin(), free_.end());
  if (free_set.size() != free_.size()) {
    return Status::Internal("arena free list holds duplicates");
  }
  Status reuse_failure = Status::OK();
  VisitTree(kRoot, [&](const CetNode& node) {
    if (!reuse_failure.ok() || node.is_root()) return;
    const uint32_t idx =
        static_cast<uint32_t>(&node - arena_.data());
    if (free_set.count(idx)) {
      reuse_failure = Status::Internal("reachable node on the free list");
    }
  });
  return reuse_failure;
}

void MomentMiner::Checkpoint(persist::CheckpointWriter* writer) const {
  writer->Tag(kMinerTag);
  writer->I64(min_support_);
  window_.Checkpoint(writer);
  index_.Checkpoint(writer);

  writer->Tag(kArenaTag);
  writer->U64(arena_.size());
  writer->U64(free_.size());
  for (uint32_t idx : free_) writer->U32(idx);
  std::vector<uint8_t> is_free(arena_.size(), 0);
  for (uint32_t idx : free_) is_free[idx] = 1;
  for (uint32_t idx = 0; idx < arena_.size(); ++idx) {
    if (is_free[idx]) continue;
    const CetNode& node = arena_[idx];
    writer->U32(node.branch_item);
    writer->I64(node.support);
    writer->U8(static_cast<uint8_t>((node.frequent_explored ? 1 : 0) |
                                    (node.unpromising ? 2 : 0) |
                                    (node.closed ? 4 : 0)));
    writer->U64(node.ext_counts.size());
    for (const CetNode::ExtCount& ec : node.ext_counts) {
      writer->U32(ec.item);
      writer->I64(ec.count);
    }
    writer->U64(node.children.size());
    for (const CetNode::ChildEntry& entry : node.children) {
      writer->U32(entry.item);
      writer->U32(entry.node);
    }
  }
}

Status MomentMiner::Restore(persist::CheckpointReader* reader) {
  if (Status s = reader->ExpectTag(kMinerTag, "moment miner"); !s.ok()) {
    return s;
  }
  const Support min_support = reader->I64();
  if (!reader->ok()) return reader->status();
  if (min_support != min_support_) {
    return Status::InvalidArgument(
        "checkpoint min_support " + std::to_string(min_support) +
        " does not match this engine's " + std::to_string(min_support_));
  }
  if (Status s = window_.Restore(reader); !s.ok()) return s;
  if (Status s = index_.Restore(reader, window_); !s.ok()) return s;

  if (Status s = reader->ExpectTag(kArenaTag, "CET arena"); !s.ok()) return s;
  const uint64_t arena_size = reader->U64();
  const uint64_t free_count = reader->ReadCount(4, "arena free list");
  if (!reader->ok()) return reader->status();
  if (arena_size == 0 || free_count >= arena_size) {
    return reader->Fail("checkpoint corrupt: CET arena has no root");
  }
  // Each live node carries at least branch/support/flags + two counts.
  if (arena_size - free_count > reader->remaining() / 29) {
    return reader->Fail("checkpoint corrupt: implausible CET arena size");
  }
  std::vector<uint32_t> free_list(free_count);
  std::vector<uint8_t> is_free(arena_size, 0);
  for (uint64_t i = 0; i < free_count; ++i) {
    const uint32_t idx = reader->U32();
    if (!reader->ok()) return reader->status();
    if (idx >= arena_size || idx == kRoot || is_free[idx]) {
      return reader->Fail("checkpoint corrupt: bad arena free-list entry");
    }
    is_free[idx] = 1;
    free_list[i] = idx;
  }

  std::vector<CetNode> arena(arena_size);
  for (uint32_t idx = 0; idx < arena_size; ++idx) {
    if (is_free[idx]) continue;
    CetNode& node = arena[idx];
    node.branch_item = reader->U32();
    node.support = reader->I64();
    const uint8_t flags = reader->U8();
    if (!reader->ok()) return reader->status();
    if (flags > 7) {
      return reader->Fail("checkpoint corrupt: bad CET node flags");
    }
    node.frequent_explored = (flags & 1) != 0;
    node.unpromising = (flags & 2) != 0;
    node.closed = (flags & 4) != 0;
    const uint64_t ext_count = reader->ReadCount(12, "extension counts");
    if (!reader->ok()) return reader->status();
    node.ext_counts.resize(ext_count);
    for (uint64_t e = 0; e < ext_count; ++e) {
      node.ext_counts[e].item = reader->U32();
      node.ext_counts[e].count = reader->I64();
      if (e > 0 && reader->ok() &&
          node.ext_counts[e].item <= node.ext_counts[e - 1].item) {
        return reader->Fail(
            "checkpoint corrupt: extension counts out of order");
      }
    }
    const uint64_t child_count = reader->ReadCount(8, "CET children");
    if (!reader->ok()) return reader->status();
    node.children.resize(child_count);
    for (uint64_t c = 0; c < child_count; ++c) {
      node.children[c].item = reader->U32();
      node.children[c].node = reader->U32();
      if (!reader->ok()) return reader->status();
      const uint32_t child = node.children[c].node;
      if (child >= arena_size || child == kRoot || is_free[child]) {
        return reader->Fail("checkpoint corrupt: bad CET child link");
      }
      if (c > 0 && node.children[c].item <= node.children[c - 1].item) {
        return reader->Fail("checkpoint corrupt: CET children out of order");
      }
    }
    if (!reader->ok()) return reader->status();
  }
  if (arena[kRoot].branch_item != kInvalidItem ||
      !arena[kRoot].frequent_explored) {
    return reader->Fail("checkpoint corrupt: malformed CET root");
  }

  // One DFS reconstructs every node's itemset from its root path and proves
  // the links form a tree (each live node reached exactly once).
  std::vector<uint8_t> visited(arena_size, 0);
  std::vector<uint32_t> stack = {kRoot};
  visited[kRoot] = 1;
  uint64_t reached = 1;
  while (!stack.empty()) {
    const uint32_t idx = stack.back();
    stack.pop_back();
    const CetNode& node = arena[idx];
    for (const CetNode::ChildEntry& entry : node.children) {
      CetNode& child = arena[entry.node];
      if (visited[entry.node]) {
        return reader->Fail("checkpoint corrupt: CET links are not a tree");
      }
      if (child.branch_item != entry.item ||
          (idx != kRoot && entry.item <= node.branch_item)) {
        return reader->Fail("checkpoint corrupt: CET branch items disagree");
      }
      child.itemset.AssignWith(node.itemset, entry.item);
      visited[entry.node] = 1;
      ++reached;
      stack.push_back(entry.node);
    }
  }
  if (reached != arena_size - free_count) {
    return reader->Fail("checkpoint corrupt: unreachable CET nodes");
  }

  arena_ = std::move(arena);
  free_ = std::move(free_list);

  // The closed→full expansion cache is reconstructible state: drop it and
  // let the first post-restore expansion rebuild it. The rebuilt content is
  // identical to what the uninterrupted run would serve, so downstream
  // consumers (the FEC partitioner, after its own Reset) stay bit-identical.
  expansion_dirty_ = true;
  expansion_cached_ = false;
  cached_closed_ = MiningOutput();
  cached_all_ = MiningOutput();
  expansion_best_.clear();
  expansion_version_ = 0;
  expansion_delta_ = MiningOutputDelta();
  return Status::OK();
}

MomentStats MomentMiner::Stats() const {
  MomentStats stats;
  VisitTree(kRoot, [&](const CetNode& node) {
    if (node.is_root()) return;
    if (!node.frequent_explored) {
      ++stats.infrequent_gateway;
    } else if (node.unpromising) {
      ++stats.unpromising_gateway;
    } else if (node.closed) {
      ++stats.closed;
    } else {
      ++stats.intermediate;
    }
  });
  return stats;
}

MomentArenaStats MomentMiner::arena_stats() const {
  MomentArenaStats stats;
  stats.capacity = arena_.size();
  stats.free_list = free_.size();
  stats.live = arena_.size() - free_.size();
  return stats;
}

}  // namespace butterfly
