#include "moment/moment.h"

#include <cassert>
#include <unordered_set>
#include <utility>

#include "mining/closed.h"

namespace butterfly {

struct MomentMiner::CetNode {
  Itemset itemset;
  Item branch_item = kInvalidItem;  // invalid for the root
  Support support = 0;

  /// True for frequent nodes carrying extension counts (and for the root,
  /// which is always maintained); false for infrequent gateway leaves.
  bool frequent_explored = false;
  bool unpromising = false;  // unpromising gateway leaf
  bool closed = false;

  /// j -> T(I ∪ {j}) for every item j outside I co-occurring with I.
  std::map<Item, Support> ext_counts;
  /// Children keyed by branch item (> branch_item); empty for leaves.
  std::map<Item, std::unique_ptr<CetNode>> children;

  bool is_root() const { return branch_item == kInvalidItem; }
};

MomentMiner::MomentMiner(size_t window_capacity, Support min_support)
    : window_(window_capacity), min_support_(min_support) {
  assert(min_support > 0);
  root_ = std::make_unique<CetNode>();
  root_->frequent_explored = true;
}

MomentMiner::~MomentMiner() = default;
MomentMiner::MomentMiner(MomentMiner&&) noexcept = default;
MomentMiner& MomentMiner::operator=(MomentMiner&&) noexcept = default;

void MomentMiner::Append(Transaction t) {
  // Slide the window first: Explore() scans the window, so it must already
  // reflect the post-slide contents when the tree update runs. The expiry
  // path never explores (expiries cannot promote nodes), so processing it
  // against the already-slid window is sound.
  std::optional<Transaction> evicted = window_.Append(std::move(t));
  const Transaction& added = window_.transactions().back();
  if (evicted) UpdateDelete(root_.get(), *evicted);
  UpdateAdd(root_.get(), added);
  expansion_dirty_ = true;
}

std::vector<const Transaction*> MomentMiner::RecordsContaining(
    const Itemset& itemset) const {
  std::vector<const Transaction*> containing;
  for (const Transaction& t : window_.transactions()) {
    if (t.items.ContainsAll(itemset)) containing.push_back(&t);
  }
  return containing;
}

bool MomentMiner::HasUnpromisingBlocker(const CetNode& node) {
  if (node.is_root()) return false;
  for (const auto& [j, count] : node.ext_counts) {
    if (j >= node.branch_item) break;  // map is ordered
    if (count == node.support) return true;
  }
  return false;
}

void MomentMiner::RecomputeClosed(CetNode* node) {
  for (const auto& [j, count] : node->ext_counts) {
    if (count == node->support) {
      node->closed = false;
      return;
    }
  }
  node->closed = true;
}

void MomentMiner::Explore(CetNode* node,
                          const std::vector<const Transaction*>& containing) {
  node->frequent_explored = true;
  node->unpromising = false;
  node->closed = false;
  node->children.clear();
  node->ext_counts.clear();
  assert(node->support == static_cast<Support>(containing.size()));

  for (const Transaction* t : containing) {
    for (Item j : t->items) {
      if (!node->itemset.Contains(j)) ++node->ext_counts[j];
    }
  }

  if (HasUnpromisingBlocker(*node)) {
    node->unpromising = true;
    return;
  }
  ExpandFromCounts(node, containing);
}

void MomentMiner::ExpandFromCounts(
    CetNode* node, const std::vector<const Transaction*>& containing) {
  for (const auto& [j, count] : node->ext_counts) {
    if (!node->is_root() && j < node->branch_item) continue;
    auto child = std::make_unique<CetNode>();
    child->itemset = node->itemset.With(j);
    child->branch_item = j;
    child->support = count;
    if (count >= min_support_) {
      std::vector<const Transaction*> child_containing;
      child_containing.reserve(count);
      for (const Transaction* t : containing) {
        if (t->items.Contains(j)) child_containing.push_back(t);
      }
      Explore(child.get(), child_containing);
    }
    node->children.emplace(j, std::move(child));
  }
  RecomputeClosed(node);
}

void MomentMiner::UpdateAdd(CetNode* node, const Transaction& t) {
  ++node->support;

  if (!node->frequent_explored) {
    // Infrequent gateway: promote once it crosses the threshold.
    if (node->support >= min_support_) {
      Explore(node, RecordsContaining(node->itemset));
    }
    return;
  }

  for (Item j : t.items) {
    if (!node->itemset.Contains(j)) ++node->ext_counts[j];
  }

  if (node->unpromising) {
    // Arrivals can only break blockers (a blocker item occurs in every record
    // containing I, hence also in t, so equalities survive unless broken).
    if (!HasUnpromisingBlocker(*node)) {
      node->unpromising = false;
      ExpandFromCounts(node, RecordsContaining(node->itemset));
    }
    return;
  }

  for (Item j : t.items) {
    if (node->itemset.Contains(j)) continue;
    if (!node->is_root() && j < node->branch_item) continue;
    auto it = node->children.find(j);
    if (it != node->children.end()) {
      UpdateAdd(it->second.get(), t);
    } else {
      // First co-occurrence of I with j in the window: new boundary child.
      auto child = std::make_unique<CetNode>();
      child->itemset = node->itemset.With(j);
      child->branch_item = j;
      child->support = node->ext_counts.at(j);
      if (child->support >= min_support_) {
        Explore(child.get(), RecordsContaining(child->itemset));
      }
      node->children.emplace(j, std::move(child));
    }
  }
  RecomputeClosed(node);
}

bool MomentMiner::UpdateDelete(CetNode* node, const Transaction& t) {
  --node->support;

  if (!node->frequent_explored) {
    return node->support == 0 && !node->is_root();
  }

  for (Item j : t.items) {
    if (node->itemset.Contains(j)) continue;
    auto it = node->ext_counts.find(j);
    assert(it != node->ext_counts.end());
    if (--it->second == 0) node->ext_counts.erase(it);
  }

  if (!node->is_root() && node->support < min_support_) {
    // Demote to infrequent gateway; the subtree dissolves with it.
    node->children.clear();
    node->ext_counts.clear();
    node->frequent_explored = false;
    node->unpromising = false;
    node->closed = false;
    return node->support == 0;
  }

  if (node->unpromising) {
    // Expiries cannot unblock: a blocker occurs in every record containing I,
    // including the expiring one, so the equality count == support survives.
    return false;
  }

  if (HasUnpromisingBlocker(*node)) {
    node->unpromising = true;
    node->children.clear();
    node->closed = false;
    return false;
  }

  for (Item j : t.items) {
    if (node->itemset.Contains(j)) continue;
    if (!node->is_root() && j < node->branch_item) continue;
    auto it = node->children.find(j);
    if (it != node->children.end() && UpdateDelete(it->second.get(), t)) {
      node->children.erase(it);
    }
  }
  RecomputeClosed(node);
  return false;
}

// The recursive walkers are generic on the node type so the private CetNode
// never has to be named outside member functions.
template <typename NodeT, typename Fn>
static void VisitTree(const NodeT& node, const Fn& fn) {
  fn(node);
  for (const auto& [item, child] : node.children) {
    (void)item;
    VisitTree(*child, fn);
  }
}

MiningOutput MomentMiner::GetClosedFrequent() const {
  MiningOutput output(min_support_);
  VisitTree(*root_, [&](const CetNode& node) {
    if (!node.is_root() && node.frequent_explored && !node.unpromising &&
        node.closed) {
      output.Add(node.itemset, node.support);
    }
  });
  output.Seal();
  return output;
}

MiningOutput MomentMiner::GetAllFrequent() const {
  return ExpandClosed(GetClosedFrequent());
}

namespace {

/// Calls fn(subset) for every non-empty subset of `s`.
template <typename Fn>
void ForEachSubset(const Itemset& s, size_t start, std::vector<Item>* prefix,
                   const Fn& fn) {
  if (!prefix->empty()) fn(Itemset::FromSorted(*prefix));
  for (size_t i = start; i < s.size(); ++i) {
    prefix->push_back(s[i]);
    ForEachSubset(s, i + 1, prefix, fn);
    prefix->pop_back();
  }
}

}  // namespace

const MiningOutput& MomentMiner::GetAllFrequentIncremental() {
  if (!expansion_dirty_ && expansion_cached_) return cached_all_;
  MiningOutput closed = GetClosedFrequent();
  expansion_dirty_ = false;

  if (!expansion_cached_) {
    // First call: full expansion, then remember its accumulator. No precise
    // delta exists yet, so consumers are told to resync.
    cached_all_ = ExpandClosed(closed);
    expansion_best_.clear();
    expansion_best_.reserve(cached_all_.size());
    for (const FrequentItemset& f : cached_all_.itemsets()) {
      expansion_best_.emplace(f.itemset, f.support);
    }
    cached_closed_ = std::move(closed);
    expansion_cached_ = true;
    expansion_delta_.Reset();
    expansion_delta_.rebuilt = true;
    ++expansion_version_;
    return cached_all_;
  }

  // Diff the two sealed (lexicographically sorted) closed outputs; a support
  // change counts as removed + added, so its subsets are re-expanded too.
  std::vector<const Itemset*> changed;
  const auto& old_items = cached_closed_.itemsets();
  const auto& new_items = closed.itemsets();
  size_t o = 0, n = 0;
  while (o < old_items.size() || n < new_items.size()) {
    if (o == old_items.size()) {
      changed.push_back(&new_items[n++].itemset);
    } else if (n == new_items.size()) {
      changed.push_back(&old_items[o++].itemset);
    } else if (old_items[o].itemset < new_items[n].itemset) {
      changed.push_back(&old_items[o++].itemset);
    } else if (new_items[n].itemset < old_items[o].itemset) {
      changed.push_back(&new_items[n++].itemset);
    } else {
      if (old_items[o].support != new_items[n].support) {
        changed.push_back(&new_items[n].itemset);
      }
      ++o;
      ++n;
    }
  }
  if (changed.empty()) {
    cached_closed_ = std::move(closed);
    return cached_all_;
  }

  // Only subsets of changed closed itemsets can change value: for any other
  // frequent X, every closed superset of X kept its support, and no closed
  // itemset newly contains X.
  std::unordered_set<Itemset, ItemsetHash> affected;
  std::vector<Item> prefix;
  for (const Itemset* z : changed) {
    ForEachSubset(*z, 0, &prefix,
                  [&](Itemset subset) { affected.insert(std::move(subset)); });
  }

  // Recompute each affected subset's max over the new closed supersets.
  // Support-only drift is patched into the sealed output in place; itemsets
  // entering or leaving the frequent set force a rebuild from the
  // accumulator (still no global re-expansion). Every realized change is
  // recorded in expansion_delta_ so downstream mirrors can patch too.
  expansion_delta_.Reset();
  bool membership_changed = false;
  for (const Itemset& x : affected) {
    Support best = 0;
    bool frequent = false;
    for (const FrequentItemset& z : new_items) {
      if (z.itemset.ContainsAll(x)) {
        frequent = true;
        if (z.support > best) best = z.support;
      }
    }
    auto it = expansion_best_.find(x);
    if (frequent) {
      if (it == expansion_best_.end()) {
        expansion_best_.emplace(x, best);
        expansion_delta_.added.emplace_back(x, best);
        membership_changed = true;
      } else if (it->second != best) {
        expansion_delta_.changed.push_back({x, it->second, best});
        if (!membership_changed) cached_all_.UpdateSupport(x, best);
        it->second = best;
      }
    } else if (it != expansion_best_.end()) {
      expansion_delta_.removed.emplace_back(x, it->second);
      expansion_best_.erase(it);
      membership_changed = true;
    }
  }

  if (membership_changed) {
    MiningOutput rebuilt(min_support_);
    for (const auto& [itemset, support] : expansion_best_) {
      rebuilt.Add(itemset, support);
    }
    rebuilt.Seal();
    cached_all_ = std::move(rebuilt);
  }
  // The delta above is exact even on the membership path (the output was
  // re-materialized, but only the recorded itemsets changed value), so the
  // version advances only when something actually changed.
  if (!expansion_delta_.Empty()) ++expansion_version_;
  cached_closed_ = std::move(closed);
  return cached_all_;
}

std::optional<Support> MomentMiner::SupportOf(const Itemset& itemset) const {
  std::optional<Support> best;
  VisitTree(*root_, [&](const CetNode& node) {
    if (node.is_root() || !node.frequent_explored || node.unpromising ||
        !node.closed) {
      return;
    }
    if (node.itemset.ContainsAll(itemset) &&
        (!best || node.support > *best)) {
      best = node.support;
    }
  });
  return best;
}

Status MomentMiner::Validate() const {
  Status failure = Status::OK();
  VisitTree(*root_, [&](const CetNode& node) {
    if (!failure.ok()) return;
    auto fail = [&](const std::string& what) {
      failure = Status::Internal(node.itemset.ToString() + ": " + what);
    };

    // Recount the node's support and extension counts from the window.
    Support support = 0;
    std::map<Item, Support> ext_counts;
    for (const Transaction& t : window_.transactions()) {
      if (!t.items.ContainsAll(node.itemset)) continue;
      ++support;
      for (Item j : t.items) {
        if (!node.itemset.Contains(j)) ++ext_counts[j];
      }
    }
    if (node.support != support) {
      return fail("stored support " + std::to_string(node.support) +
                  " != recounted " + std::to_string(support));
    }

    if (!node.frequent_explored) {
      if (!node.is_root() && node.support >= min_support_) {
        return fail("infrequent gateway at or above the threshold");
      }
      if (!node.children.empty() || !node.ext_counts.empty()) {
        return fail("infrequent gateway carrying children or counts");
      }
      return;
    }

    if (!node.is_root() && node.support < min_support_) {
      return fail("explored node below the threshold");
    }
    if (node.ext_counts != ext_counts) {
      return fail("stale extension counts");
    }

    bool blocked = HasUnpromisingBlocker(node);
    if (node.unpromising != blocked) {
      return fail(blocked ? "promising node with a blocker"
                          : "unpromising node without a blocker");
    }
    if (node.unpromising) {
      if (!node.children.empty()) return fail("unpromising node with children");
      return;
    }

    // Children invariant and closedness.
    bool closed = true;
    for (const auto& [j, count] : ext_counts) {
      if (count == node.support) closed = false;
      if (!node.is_root() && j < node.branch_item) continue;
      auto it = node.children.find(j);
      if (it == node.children.end()) {
        return fail("missing child for item " + std::to_string(j));
      }
      if (it->second->support != count) {
        return fail("child support mismatch for item " + std::to_string(j));
      }
    }
    for (const auto& [j, child] : node.children) {
      (void)child;
      if (!ext_counts.count(j)) {
        return fail("child for vanished item " + std::to_string(j));
      }
    }
    if (!node.is_root() && node.closed != closed) {
      return fail(closed ? "closed node not flagged" : "non-closed flagged");
    }
  });
  return failure;
}

MomentStats MomentMiner::Stats() const {
  MomentStats stats;
  VisitTree(*root_, [&](const CetNode& node) {
    if (node.is_root()) return;
    if (!node.frequent_explored) {
      ++stats.infrequent_gateway;
    } else if (node.unpromising) {
      ++stats.unpromising_gateway;
    } else if (node.closed) {
      ++stats.closed;
    } else {
      ++stats.intermediate;
    }
  });
  return stats;
}

}  // namespace butterfly
