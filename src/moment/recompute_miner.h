/// \file recompute_miner.h
/// \brief The naive stream-mining baseline: keep the window, re-mine it from
/// scratch with a batch miner whenever output is requested. This is the
/// strawman Moment exists to beat; the ablation_moment benchmark puts
/// numbers on that claim in this codebase.

#ifndef BUTTERFLY_MOMENT_RECOMPUTE_MINER_H_
#define BUTTERFLY_MOMENT_RECOMPUTE_MINER_H_

#include <memory>

#include "mining/closed.h"
#include "mining/miner.h"
#include "stream/sliding_window.h"

namespace butterfly {

/// A sliding-window miner that recomputes per request.
class RecomputeStreamMiner {
 public:
  /// \param window_capacity the window size H (> 0).
  /// \param min_support the minimum support C (> 0).
  /// \param miner the batch miner to re-run; defaults to Eclat+closure
  ///        (matching Moment's closed output).
  RecomputeStreamMiner(size_t window_capacity, Support min_support,
                       std::unique_ptr<FrequentItemsetMiner> miner = nullptr)
      : window_(window_capacity),
        min_support_(min_support),
        miner_(miner ? std::move(miner) : std::make_unique<ClosedMiner>()) {}

  void Append(Transaction t) { window_.Append(std::move(t)); }

  const SlidingWindow& window() const { return window_; }
  Support min_support() const { return min_support_; }

  /// Closed frequent itemsets of the current window (full re-mining).
  MiningOutput GetClosedFrequent() const {
    return miner_->Mine(window_.Snapshot(), min_support_);
  }

  /// All frequent itemsets of the current window.
  MiningOutput GetAllFrequent() const {
    return ExpandClosed(GetClosedFrequent());
  }

 private:
  SlidingWindow window_;
  Support min_support_;
  std::unique_ptr<FrequentItemsetMiner> miner_;
};

}  // namespace butterfly

#endif  // BUTTERFLY_MOMENT_RECOMPUTE_MINER_H_
