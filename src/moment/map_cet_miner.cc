#include "moment/map_cet_miner.h"

#include <cassert>
#include <string>
#include <utility>

#include "mining/closed.h"

namespace butterfly {

struct MapCetMiner::CetNode {
  Itemset itemset;
  Item branch_item = kInvalidItem;  // invalid for the root
  Support support = 0;

  /// True for frequent nodes carrying extension counts (and for the root,
  /// which is always maintained); false for infrequent gateway leaves.
  bool frequent_explored = false;
  bool unpromising = false;  // unpromising gateway leaf
  bool closed = false;

  /// j -> T(I ∪ {j}) for every item j outside I co-occurring with I.
  std::map<Item, Support> ext_counts;
  /// Children keyed by branch item (> branch_item); empty for leaves.
  std::map<Item, std::unique_ptr<CetNode>> children;

  bool is_root() const { return branch_item == kInvalidItem; }
};

MapCetMiner::MapCetMiner(size_t window_capacity, Support min_support)
    : window_(window_capacity), min_support_(min_support) {
  assert(min_support > 0);
  root_ = std::make_unique<CetNode>();
  root_->frequent_explored = true;
}

MapCetMiner::~MapCetMiner() = default;
MapCetMiner::MapCetMiner(MapCetMiner&&) noexcept = default;
MapCetMiner& MapCetMiner::operator=(MapCetMiner&&) noexcept = default;

void MapCetMiner::Append(Transaction t) {
  // Slide the window first: Explore() scans the window, so it must already
  // reflect the post-slide contents when the tree update runs. The expiry
  // path never explores (expiries cannot promote nodes), so processing it
  // against the already-slid window is sound.
  std::optional<Transaction> evicted = window_.Append(std::move(t));
  const Transaction& added = window_.transactions().back();
  if (evicted) UpdateDelete(root_.get(), *evicted);
  UpdateAdd(root_.get(), added);
}

std::vector<const Transaction*> MapCetMiner::RecordsContaining(
    const Itemset& itemset) const {
  std::vector<const Transaction*> containing;
  for (const Transaction& t : window_.transactions()) {
    if (t.items.ContainsAll(itemset)) containing.push_back(&t);
  }
  return containing;
}

bool MapCetMiner::HasUnpromisingBlocker(const CetNode& node) {
  if (node.is_root()) return false;
  for (const auto& [j, count] : node.ext_counts) {
    if (j >= node.branch_item) break;  // map is ordered
    if (count == node.support) return true;
  }
  return false;
}

void MapCetMiner::RecomputeClosed(CetNode* node) {
  for (const auto& [j, count] : node->ext_counts) {
    if (count == node->support) {
      node->closed = false;
      return;
    }
  }
  node->closed = true;
}

void MapCetMiner::Explore(CetNode* node,
                          const std::vector<const Transaction*>& containing) {
  node->frequent_explored = true;
  node->unpromising = false;
  node->closed = false;
  node->children.clear();
  node->ext_counts.clear();
  assert(node->support == static_cast<Support>(containing.size()));

  for (const Transaction* t : containing) {
    for (Item j : t->items) {
      if (!node->itemset.Contains(j)) ++node->ext_counts[j];
    }
  }

  if (HasUnpromisingBlocker(*node)) {
    node->unpromising = true;
    return;
  }
  ExpandFromCounts(node, containing);
}

void MapCetMiner::ExpandFromCounts(
    CetNode* node, const std::vector<const Transaction*>& containing) {
  for (const auto& [j, count] : node->ext_counts) {
    if (!node->is_root() && j < node->branch_item) continue;
    auto child = std::make_unique<CetNode>();
    child->itemset = node->itemset.With(j);
    child->branch_item = j;
    child->support = count;
    if (count >= min_support_) {
      std::vector<const Transaction*> child_containing;
      child_containing.reserve(count);
      for (const Transaction* t : containing) {
        if (t->items.Contains(j)) child_containing.push_back(t);
      }
      Explore(child.get(), child_containing);
    }
    node->children.emplace(j, std::move(child));
  }
  RecomputeClosed(node);
}

void MapCetMiner::UpdateAdd(CetNode* node, const Transaction& t) {
  ++node->support;

  if (!node->frequent_explored) {
    // Infrequent gateway: promote once it crosses the threshold.
    if (node->support >= min_support_) {
      Explore(node, RecordsContaining(node->itemset));
    }
    return;
  }

  for (Item j : t.items) {
    if (!node->itemset.Contains(j)) ++node->ext_counts[j];
  }

  if (node->unpromising) {
    // Arrivals can only break blockers (a blocker item occurs in every record
    // containing I, hence also in t, so equalities survive unless broken).
    if (!HasUnpromisingBlocker(*node)) {
      node->unpromising = false;
      ExpandFromCounts(node, RecordsContaining(node->itemset));
    }
    return;
  }

  for (Item j : t.items) {
    if (node->itemset.Contains(j)) continue;
    if (!node->is_root() && j < node->branch_item) continue;
    auto it = node->children.find(j);
    if (it != node->children.end()) {
      UpdateAdd(it->second.get(), t);
    } else {
      // First co-occurrence of I with j in the window: new boundary child.
      auto child = std::make_unique<CetNode>();
      child->itemset = node->itemset.With(j);
      child->branch_item = j;
      child->support = node->ext_counts.at(j);
      if (child->support >= min_support_) {
        Explore(child.get(), RecordsContaining(child->itemset));
      }
      node->children.emplace(j, std::move(child));
    }
  }
  RecomputeClosed(node);
}

bool MapCetMiner::UpdateDelete(CetNode* node, const Transaction& t) {
  --node->support;

  if (!node->frequent_explored) {
    return node->support == 0 && !node->is_root();
  }

  for (Item j : t.items) {
    if (node->itemset.Contains(j)) continue;
    auto it = node->ext_counts.find(j);
    assert(it != node->ext_counts.end());
    if (--it->second == 0) node->ext_counts.erase(it);
  }

  if (!node->is_root() && node->support < min_support_) {
    // Demote to infrequent gateway; the subtree dissolves with it.
    node->children.clear();
    node->ext_counts.clear();
    node->frequent_explored = false;
    node->unpromising = false;
    node->closed = false;
    return node->support == 0;
  }

  if (node->unpromising) {
    // Expiries cannot unblock: a blocker occurs in every record containing I,
    // including the expiring one, so the equality count == support survives.
    return false;
  }

  if (HasUnpromisingBlocker(*node)) {
    node->unpromising = true;
    node->children.clear();
    node->closed = false;
    return false;
  }

  for (Item j : t.items) {
    if (node->itemset.Contains(j)) continue;
    if (!node->is_root() && j < node->branch_item) continue;
    auto it = node->children.find(j);
    if (it != node->children.end() && UpdateDelete(it->second.get(), t)) {
      node->children.erase(it);
    }
  }
  RecomputeClosed(node);
  return false;
}

namespace {

template <typename NodeT, typename Fn>
void VisitTree(const NodeT& node, const Fn& fn) {
  fn(node);
  for (const auto& [item, child] : node.children) {
    (void)item;
    VisitTree(*child, fn);
  }
}

}  // namespace

MiningOutput MapCetMiner::GetClosedFrequent() const {
  MiningOutput output(min_support_);
  VisitTree(*root_, [&](const CetNode& node) {
    if (!node.is_root() && node.frequent_explored && !node.unpromising &&
        node.closed) {
      output.Add(node.itemset, node.support);
    }
  });
  output.Seal();
  return output;
}

MiningOutput MapCetMiner::GetAllFrequent() const {
  return ExpandClosed(GetClosedFrequent());
}

Status MapCetMiner::Validate() const {
  Status failure = Status::OK();
  VisitTree(*root_, [&](const CetNode& node) {
    if (!failure.ok()) return;
    auto fail = [&](const std::string& what) {
      failure = Status::Internal(node.itemset.ToString() + ": " + what);
    };

    Support support = 0;
    std::map<Item, Support> ext_counts;
    for (const Transaction& t : window_.transactions()) {
      if (!t.items.ContainsAll(node.itemset)) continue;
      ++support;
      for (Item j : t.items) {
        if (!node.itemset.Contains(j)) ++ext_counts[j];
      }
    }
    if (node.support != support) {
      return fail("stored support " + std::to_string(node.support) +
                  " != recounted " + std::to_string(support));
    }

    if (!node.frequent_explored) {
      if (!node.is_root() && node.support >= min_support_) {
        return fail("infrequent gateway at or above the threshold");
      }
      if (!node.children.empty() || !node.ext_counts.empty()) {
        return fail("infrequent gateway carrying children or counts");
      }
      return;
    }

    if (!node.is_root() && node.support < min_support_) {
      return fail("explored node below the threshold");
    }
    if (node.ext_counts != ext_counts) {
      return fail("stale extension counts");
    }

    bool blocked = HasUnpromisingBlocker(node);
    if (node.unpromising != blocked) {
      return fail(blocked ? "promising node with a blocker"
                          : "unpromising node without a blocker");
    }
    if (node.unpromising) {
      if (!node.children.empty()) return fail("unpromising node with children");
      return;
    }

    bool closed = true;
    for (const auto& [j, count] : ext_counts) {
      if (count == node.support) closed = false;
      if (!node.is_root() && j < node.branch_item) continue;
      auto it = node.children.find(j);
      if (it == node.children.end()) {
        return fail("missing child for item " + std::to_string(j));
      }
      if (it->second->support != count) {
        return fail("child support mismatch for item " + std::to_string(j));
      }
    }
    for (const auto& [j, child] : node.children) {
      (void)child;
      if (!ext_counts.count(j)) {
        return fail("child for vanished item " + std::to_string(j));
      }
    }
    if (!node.is_root() && node.closed != closed) {
      return fail(closed ? "closed node not flagged" : "non-closed flagged");
    }
  });
  return failure;
}

}  // namespace butterfly
