/// \file moment.h
/// \brief Moment-style maintenance of closed frequent itemsets over a sliding
/// window (Chi, Wang, Yu & Muntz, ICDM'04) — the stream-mining substrate the
/// paper builds Butterfly on.
///
/// The miner maintains a *closed enumeration tree* (CET). Each node stands
/// for an itemset I (the path of branch items from the root) and carries the
/// node taxonomy of the Moment paper:
///
///  * infrequent gateway node — I is infrequent; kept as a boundary leaf so
///    that a single arrival can promote it without re-mining from scratch;
///  * unpromising gateway node — I is frequent but some item j < max(I)
///    outside I appears in every window record containing I
///    (tidset(I) ⊆ tidset(j)); then neither I nor any descendant can be
///    closed, so the subtree is pruned;
///  * intermediate node — frequent, promising, but some extension preserves
///    its support (not closed);
///  * closed node — frequent and closed.
///
/// Instead of Moment's tid-sum hash, each frequent node carries its
/// extension-count table `j -> T(I ∪ {j})`, which a record arrival/expiry
/// updates in O(|record|) per affected node and which answers all three
/// questions (children supports, the unpromising check, closedness) exactly.
/// Expiries can only create unpromising blockers and arrivals can only break
/// them, so transitions are localized, exactly as in Moment.
///
/// Two layout decisions make the maintenance fast (see DESIGN.md):
///
///  * a WindowBitmapIndex (vertical per-item tid-bitmaps over the H window
///    slots) answers every "which records contain I" question — gateway
///    promotion, unpromising un-blocking, subtree (re)exploration — by
///    AND + popcount over 64-bit words instead of rescanning the window;
///  * CET nodes live in an arena (contiguous pool, uint32 index links,
///    free-list reuse) with flat sorted child and extension-count arrays, so
///    steady-state maintenance performs no per-node heap allocation and no
///    pointer-chasing through std::map nodes.
///
/// The mined output is bit-identical (same closed itemsets, same supports,
/// same canonical order) to the map-based reference implementation preserved
/// in map_cet_miner.h, which the equivalence test suites pin it against.

#ifndef BUTTERFLY_MOMENT_MOMENT_H_
#define BUTTERFLY_MOMENT_MOMENT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitmap.h"
#include "common/status.h"
#include "common/transaction.h"
#include "mining/mining_result.h"
#include "stream/sliding_window.h"
#include "stream/window_bitmap_index.h"

namespace butterfly {

namespace persist {
class CheckpointWriter;
class CheckpointReader;
}  // namespace persist

/// CET node taxonomy (see file comment).
enum class CetNodeKind {
  kInfrequentGateway,
  kUnpromisingGateway,
  kIntermediate,
  kClosed,
};

/// Counts of live CET nodes by kind, for tests and diagnostics.
struct MomentStats {
  size_t infrequent_gateway = 0;
  size_t unpromising_gateway = 0;
  size_t intermediate = 0;
  size_t closed = 0;

  size_t total() const {
    return infrequent_gateway + unpromising_gateway + intermediate + closed;
  }
};

/// Occupancy of the CET node arena, for the steady-state reuse tests: once a
/// workload's node population stabilizes, `capacity` stops growing and churn
/// is served entirely from the free list.
struct MomentArenaStats {
  size_t capacity = 0;  ///< nodes ever materialized (pool size, incl. root)
  size_t live = 0;      ///< nodes currently in the tree (incl. root)
  size_t free_list = 0; ///< pooled nodes awaiting reuse
};

/// Incremental closed-frequent-itemset miner over a sliding window.
class MomentMiner {
 public:
  /// \param window_capacity the window size H (> 0).
  /// \param min_support the minimum support C (> 0).
  /// \param row_store the window-index row representation; hybrid trades the
  ///        dense per-item bitmaps for compressed containers with identical
  ///        mined output (see window_bitmap_index.h).
  MomentMiner(size_t window_capacity, Support min_support,
              IndexRowStore row_store = IndexRowStore::kDense);
  ~MomentMiner();

  MomentMiner(const MomentMiner&) = delete;
  MomentMiner& operator=(const MomentMiner&) = delete;
  MomentMiner(MomentMiner&&) noexcept;
  MomentMiner& operator=(MomentMiner&&) noexcept;

  /// Appends the next stream record, expiring the oldest if the window is
  /// full, and updates the bitmap index and the CET incrementally.
  void Append(Transaction t);

  Support min_support() const { return min_support_; }
  const SlidingWindow& window() const { return window_; }
  /// The vertical bitmap index mirroring the window contents.
  const WindowBitmapIndex& bitmap_index() const { return index_; }

  /// The closed frequent itemsets of the current window, with exact supports.
  MiningOutput GetClosedFrequent() const;

  /// The support of one itemset, answered from the CET without materializing
  /// the full output: T(X) = max{T(Z) : Z closed, X ⊆ Z}. Returns nullopt
  /// when X is not frequent in the current window.
  std::optional<Support> SupportOf(const Itemset& itemset) const;

  /// All frequent itemsets of the current window (closed set expanded).
  MiningOutput GetAllFrequent() const;

  /// All frequent itemsets, maintained incrementally across slides. The
  /// previous call's closed→full expansion is cached; a slide that left the
  /// closed set unchanged returns the cache untouched (an Append sets a
  /// dirty flag, cleared after re-validation), and a slide that changed only
  /// a few closed itemsets re-expands just the subsets of those. The result
  /// is always identical to GetAllFrequent(). Returns a reference into the
  /// miner, valid until the next non-const call.
  ///
  /// Each call that changes the cached output also bumps expansion_version()
  /// and records the exact per-itemset change in last_expansion_delta(), so
  /// downstream mirrors (the FEC partitioner) can patch instead of rebuild.
  const MiningOutput& GetAllFrequentIncremental();

  /// Version of the incrementally maintained output: 0 before the first
  /// expansion, then +1 per GetAllFrequentIncremental call whose result
  /// differs from the previous one.
  uint64_t expansion_version() const { return expansion_version_; }

  /// The change from version−1 to version of the incremental output.
  /// `rebuilt` is set when no precise delta exists (the first expansion).
  const MiningOutputDelta& last_expansion_delta() const {
    return expansion_delta_;
  }

  /// Live node counts by kind.
  MomentStats Stats() const;

  /// Node-arena occupancy (for the allocation-reuse tests).
  MomentArenaStats arena_stats() const;

  /// Deep self-check: recounts every node's support and extension counts
  /// from the window and re-derives its kind, the children invariant (an
  /// explored promising node has a child for every co-occurring extension
  /// item above its branch item) and the closed flag; also cross-checks the
  /// bitmap index against the window contents and the arena's free-list
  /// accounting against the reachable tree. O(nodes × window); intended for
  /// tests and debugging, not the hot path. Returns the first violation.
  Status Validate() const;

  /// Serializes the window, the bitmap index and the CET arena (free list,
  /// per-node links/counts/flags). Node itemsets are NOT written — each one
  /// is its root path's item sequence, and Restore rebuilds them in one DFS.
  /// The expansion cache is reconstructible and also not written; the first
  /// post-restore expansion rebuilds it with identical content.
  void Checkpoint(persist::CheckpointWriter* writer) const;

  /// Restores from a checkpoint section into a miner constructed with the
  /// same window capacity and min_support (both validated). Returns Status
  /// errors, never asserts, on mismatched parameters or corrupted sections;
  /// on error the miner's previous state is unspecified but destructible.
  Status Restore(persist::CheckpointReader* reader);

 private:
  struct CetNode;
  static constexpr uint32_t kRoot = 0;
  static constexpr uint32_t kNoNode = static_cast<uint32_t>(-1);

  CetNode& N(uint32_t idx);
  const CetNode& N(uint32_t idx) const;

  /// Takes a node from the free list (or grows the arena) and resets it.
  /// Growing invalidates CetNode references — callers re-fetch via N().
  uint32_t AllocNode();
  /// Returns a leaf to the free list, keeping its buffers for reuse.
  void FreeNode(uint32_t idx);
  /// Frees a node's entire child subtree and clears its child array.
  void FreeChildren(uint32_t idx);

  void UpdateAdd(uint32_t idx, const Transaction& t);
  /// Returns true if the node should be removed from its parent.
  bool UpdateDelete(uint32_t idx, const Transaction& t);

  /// Rebuilds the incremental-expansion cache from scratch over \p closed
  /// and publishes a rebuilt (imprecise) delta. Shared by the first
  /// expansion and the crossover fallback in GetAllFrequentIncremental,
  /// which routes here when the accumulated closed-set churn makes patching
  /// slower than re-expanding.
  const MiningOutput& RebuildExpansionFromScratch(MiningOutput closed);

  /// (Re)derives a node's extension counts from its tidset (expected in
  /// tidset_scratch_[depth]) and builds its subtree.
  void Explore(uint32_t idx, size_t depth);

  /// Builds children/closed flag for a node whose ext_counts are current and
  /// whose tidset is in tidset_scratch_[depth].
  void ExpandFromCounts(uint32_t idx, size_t depth);

  /// Recounts ext_counts from the tidset in tidset_scratch_[depth].
  void BuildExtCounts(uint32_t idx, size_t depth);

  /// Merges the items of \p t (minus the node's own items) into the node's
  /// sorted extension-count array: +1 per present item, insert-at-1 for new
  /// co-occurrences.
  void MergeAddExtCounts(CetNode* node, const Transaction& t);
  /// Inverse of MergeAddExtCounts; drops counts that reach zero.
  static void MergeSubExtCounts(CetNode* node, const Transaction& t);

  /// Recomputes a frequent node's closed flag from its extension counts.
  static void RecomputeClosed(CetNode* node);

  /// True iff some j < max(I) outside I occurs in every record containing I.
  static bool HasUnpromisingBlocker(const CetNode& node);

  /// tidset_scratch_[depth], grown on demand (deque: growth keeps existing
  /// references valid across the recursion that holds them).
  Bitmap& ScratchAt(size_t depth);

  /// fn(node) over the subtree of idx in canonical (depth-first, ascending
  /// branch item) order.
  template <typename Fn>
  void VisitTree(uint32_t idx, const Fn& fn) const;

  SlidingWindow window_;
  Support min_support_;
  WindowBitmapIndex index_;

  // --- CET node arena: contiguous pool + free list, uint32 links.
  std::vector<CetNode> arena_;
  std::vector<uint32_t> free_;

  // --- reusable scratch (no steady-state allocation).
  std::deque<Bitmap> tidset_scratch_;     ///< per-depth tidsets
  std::vector<Support> count_scratch_;    ///< dense item id -> running count
  std::vector<Item> touched_scratch_;     ///< items seen by BuildExtCounts
  std::vector<Item> missing_scratch_;     ///< new items in MergeAddExtCounts

  // --- incremental closed→full expansion cache (GetAllFrequentIncremental).
  /// Set by Append (any CET mutation), cleared once the cache is revalidated.
  bool expansion_dirty_ = true;
  /// True once a full expansion has been built and the cache is usable.
  bool expansion_cached_ = false;
  /// The closed output the cache was built from (the diff baseline).
  MiningOutput cached_closed_;
  /// The cached full expansion, patched in place on support-only drift.
  MiningOutput cached_all_;
  /// frequent itemset → max support over closed supersets; the persistent
  /// form of ExpandClosed's accumulator, patched per changed closed itemset.
  std::unordered_map<Itemset, Support, ItemsetHash> expansion_best_;
  /// Version counter and exact change record of cached_all_ (see
  /// expansion_version / last_expansion_delta).
  uint64_t expansion_version_ = 0;
  MiningOutputDelta expansion_delta_;
};

}  // namespace butterfly

#endif  // BUTTERFLY_MOMENT_MOMENT_H_
