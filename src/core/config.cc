#include "core/config.h"

#include <sstream>

#include "core/noise.h"

namespace butterfly {

std::string SchemeName(ButterflyScheme scheme) {
  switch (scheme) {
    case ButterflyScheme::kBasic:
      return "basic";
    case ButterflyScheme::kOrderPreserving:
      return "order-preserving";
    case ButterflyScheme::kRatioPreserving:
      return "ratio-preserving";
    case ButterflyScheme::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

std::string ReleasePolicyName(ReleasePolicyKind kind) {
  switch (kind) {
    case ReleasePolicyKind::kButterfly:
      return "butterfly";
    case ReleasePolicyKind::kPrivBasis:
      return "privbasis";
    case ReleasePolicyKind::kContinual:
      return "continual";
    case ReleasePolicyKind::kHeavyHitter:
      return "heavyhitter";
  }
  return "unknown";
}

std::optional<ReleasePolicyKind> ParseReleasePolicyKind(std::string_view name) {
  if (name == "butterfly") return ReleasePolicyKind::kButterfly;
  if (name == "privbasis") return ReleasePolicyKind::kPrivBasis;
  if (name == "continual") return ReleasePolicyKind::kContinual;
  if (name == "heavyhitter") return ReleasePolicyKind::kHeavyHitter;
  return std::nullopt;
}

Status ButterflyConfig::Validate() const {
  if (epsilon <= 0) return Status::InvalidArgument("epsilon must be positive");
  if (delta <= 0) return Status::InvalidArgument("delta must be positive");
  if (min_support <= 0) {
    return Status::InvalidArgument("min_support must be positive");
  }
  if (vulnerable_support <= 0) {
    return Status::InvalidArgument("vulnerable_support must be positive");
  }
  if (vulnerable_support >= min_support) {
    return Status::InvalidArgument(
        "vulnerable_support K must be below min_support C");
  }
  if (lambda < 0 || lambda > 1) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  if (order_opt.gamma > 8) {
    return Status::InvalidArgument("gamma above 8 is not supported");
  }
  if (threads < 0 || threads > 1024) {
    return Status::InvalidArgument(
        "threads must lie in [0, 1024] (0 = hardware concurrency)");
  }
  if (policy != ReleasePolicyKind::kButterfly) {
    if (!(policy_epsilon > 0) || policy_epsilon > 1e6) {
      return Status::InvalidArgument(
          "policy_epsilon must lie in (0, 1e6] for the DP release policies");
    }
    if (policy_top_k == 0 || policy_top_k > 1000000) {
      return Status::InvalidArgument(
          "policy_top_k must lie in [1, 1e6]");
    }
  }
  if (ppr() + 1e-12 < MinPpr()) {
    std::ostringstream msg;
    msg << "epsilon/delta = " << ppr() << " below the minimum ppr K^2/(2C^2) = "
        << MinPpr() << "; no sigma^2 satisfies both requirements";
    return Status::InvalidArgument(msg.str());
  }
  // The noise region length is an integer, so the realized variance can
  // overshoot δK²/2 slightly; the precision budget must absorb the realized
  // value, not just the continuous bound (caught by the property sweep at
  // exactly the minimum ppr).
  NoiseModel noise(delta, vulnerable_support);
  double c = static_cast<double>(min_support);
  if (noise.variance() > epsilon * c * c + 1e-9) {
    std::ostringstream msg;
    msg << "discretized noise variance " << noise.variance()
        << " (region length " << noise.alpha()
        << ") exceeds the precision budget epsilon*C^2 = " << epsilon * c * c
        << "; raise epsilon slightly or lower delta";
    return Status::InvalidArgument(msg.str());
  }
  return Status::OK();
}

}  // namespace butterfly
