/// \file fec.h
/// \brief Frequency equivalence classes (Definition 5 of the paper).
///
/// A FEC groups the frequent itemsets sharing one support value. The
/// optimized schemes perturb per FEC — every member receives the same
/// sanitized support — so that within-class equality (and hence the order
/// and ratio structure it carries) survives sanitization exactly.

#ifndef BUTTERFLY_CORE_FEC_H_
#define BUTTERFLY_CORE_FEC_H_

#include <cstdint>
#include <map>
#include <vector>

#include "mining/mining_result.h"

namespace butterfly {

/// One frequency equivalence class.
struct Fec {
  Support support = 0;            ///< t_i, the members' common true support
  std::vector<Itemset> members;   ///< itemsets with this support, ascending

  size_t size() const { return members.size(); }
};

/// A borrowed, support-ascending view of a FEC partition. The pointees are
/// owned by the producer (a local partition or a FecPartitioner) and stay
/// valid until it next mutates.
using FecView = std::vector<const Fec*>;

/// Partitions a mining output into FECs, strictly ascending by support.
std::vector<Fec> PartitionIntoFecs(const MiningOutput& output);

/// Maintains the support→FEC partition of a mined output *incrementally*
/// across window slides: Sync patches only the itemsets named by the
/// producer's MiningOutputDelta (the same delta the Moment expansion cache
/// computes), instead of rebuilding and re-sorting every class per window.
/// The resulting partition — class order and member order — is always
/// identical to PartitionIntoFecs over the full output.
class FecPartitioner {
 public:
  /// Brings the partition up to \p out, the producer's output at version
  /// \p version; \p delta describes the change from the previous version.
  /// Falls back to a full rebuild when the delta cannot be applied (first
  /// sync, producer rebuild, or a missed version). Idempotent per version.
  void Sync(const MiningOutput& out, uint64_t version,
            const MiningOutputDelta& delta);

  /// The current partition, strictly ascending by support. Pointers stay
  /// valid until the next Sync or Reset.
  const FecView& view() const { return view_; }

  /// Sum of member counts across classes (= size of the mirrored output).
  size_t total_members() const { return total_members_; }

  /// True iff the last Sync applied the delta instead of rebuilding.
  bool last_sync_was_incremental() const { return last_incremental_; }

  /// Catches a lagging partition up one version from a *saved* producer
  /// delta, without access to the producer's full output (which has moved
  /// on). Used by the pipelined release path, where two partitions alternate
  /// and the idle one is always one release behind: replaying the previous
  /// release's delta here lets the following Sync patch incrementally
  /// instead of rebuilding. Strictly best-effort — a no-op unless \p version
  /// is exactly the next version and \p delta is a precise patch; when it
  /// declines, a later Sync simply rebuilds. Returns true iff applied.
  bool ApplyDelta(uint64_t version, const MiningOutputDelta& delta);

  /// Drops all state; the next Sync rebuilds from the full output.
  void Reset();

 private:
  void Rebuild(const MiningOutput& out);
  void Insert(const Itemset& itemset, Support support);
  void Remove(const Itemset& itemset, Support support);
  void RefreshView();

  std::map<Support, Fec> classes_;
  FecView view_;
  bool view_dirty_ = false;
  bool synced_ = false;
  bool last_incremental_ = false;
  uint64_t applied_version_ = 0;
  size_t total_members_ = 0;
};

/// The maximum adjustable bias βᵐ = sqrt(ε·t² − σ²) (Definition 7, with the
/// realized noise variance in place of δK²/2 so the ε guarantee is honored
/// exactly). Returns 0 when the argument of the root is non-positive.
double MaxAdjustableBias(Support support, double epsilon,
                         double noise_variance);

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_FEC_H_
