/// \file fec.h
/// \brief Frequency equivalence classes (Definition 5 of the paper).
///
/// A FEC groups the frequent itemsets sharing one support value. The
/// optimized schemes perturb per FEC — every member receives the same
/// sanitized support — so that within-class equality (and hence the order
/// and ratio structure it carries) survives sanitization exactly.

#ifndef BUTTERFLY_CORE_FEC_H_
#define BUTTERFLY_CORE_FEC_H_

#include <vector>

#include "mining/mining_result.h"

namespace butterfly {

/// One frequency equivalence class.
struct Fec {
  Support support = 0;            ///< t_i, the members' common true support
  std::vector<Itemset> members;   ///< itemsets with this support

  size_t size() const { return members.size(); }
};

/// Partitions a mining output into FECs, strictly ascending by support.
std::vector<Fec> PartitionIntoFecs(const MiningOutput& output);

/// The maximum adjustable bias βᵐ = sqrt(ε·t² − σ²) (Definition 7, with the
/// realized noise variance in place of δK²/2 so the ε guarantee is honored
/// exactly). Returns 0 when the argument of the root is non-positive.
double MaxAdjustableBias(Support support, double epsilon,
                         double noise_variance);

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_FEC_H_
