#include "core/bias_setting.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"

namespace butterfly {

std::vector<double> ZeroBiases(size_t n) { return std::vector<double>(n, 0.0); }

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Hard ceilings on the flat tables: per-step states and total backtrack
/// bytes. Configurations beyond them (extreme γ × grid products far past the
/// default max_states budget) fall back to the map-based reference, which
/// materializes only reachable states.
constexpr size_t kMaxFlatStatesPerStep = size_t{1} << 20;
constexpr size_t kMaxFlatBacktrackBytes = size_t{1} << 24;

// Integer bias candidates for one FEC: a symmetric grid over [−βᵐ, βᵐ] with
// at most `max_candidates` points, always containing 0 (so the zero-bias
// configuration — feasible because supports are strictly increasing — is
// always reachable). Writes into *out to reuse its capacity across calls.
void BiasGridInto(double max_bias, size_t max_candidates,
                  std::vector<int64_t>* out) {
  out->clear();
  int64_t bound = static_cast<int64_t>(std::floor(max_bias));
  if (bound <= 0 || max_candidates <= 1) {
    out->push_back(0);
    return;
  }
  size_t span = static_cast<size_t>(2 * bound + 1);
  size_t points = std::min(max_candidates | 1u, span);  // odd => includes 0
  out->reserve(points);
  for (size_t i = 0; i < points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points - 1);
    const double spread = static_cast<double>(bound);
    out->push_back(
        static_cast<int64_t>(std::llround(-spread + frac * 2.0 * spread)));
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

// Pairwise inversion-risk cost (the objective of Algorithm 1): zero once the
// uncertainty regions are separated by at least α + 1.
double PairCost(const FecProfile& a, const FecProfile& b, int64_t distance,
                int64_t alpha) {
  if (distance >= alpha + 1) return 0.0;
  double gap = static_cast<double>(alpha + 1 - distance);
  return static_cast<double>(a.member_count + b.member_count) * gap * gap;
}

/// The per-FEC grid size for one state budget: the DP window holds γ FECs,
/// so grids of size G yield at most G^γ states.
size_t DeriveGridCap(const OrderOptConfig& opt, size_t gamma) {
  size_t grid_cap = opt.max_candidates;
  if (gamma > 1) {
    double budget = std::pow(static_cast<double>(opt.max_states),
                             1.0 / static_cast<double>(gamma));
    grid_cap = std::min<size_t>(
        grid_cap, std::max<size_t>(3, static_cast<size_t>(budget)));
  }
  // Candidate indices are bytes (0xff is the "nothing dropped" sentinel), so
  // a grid never exceeds 255 points.
  return std::min<size_t>(grid_cap, 255);
}

// Packs up to 8 candidate indices (each < 255) into a state key. The first
// window element lands in the most significant byte, so ascending key order
// is lexicographic window order — the tie-break order shared with the
// flat-table DP.
uint64_t PackKey(const std::vector<uint8_t>& window) {
  uint64_t key = 0;
  for (uint8_t idx : window) key = (key << 8) | (uint64_t(idx) + 1);
  return key;
}

struct DpEntry {
  double cost = kInf;
  uint8_t dropped = 0xff;  // candidate index of the FEC that left the window
};

}  // namespace

std::vector<double> OrderPreservingBiasesReference(
    const std::vector<FecProfile>& fecs, int64_t alpha,
    const OrderOptConfig& opt) {
  const size_t n = fecs.size();
  if (n == 0) return {};
  const size_t gamma = std::min<size_t>(opt.gamma, 8);
  if (gamma == 0 || n == 1) return ZeroBiases(n);

  const size_t grid_cap = DeriveGridCap(opt, gamma);
  std::vector<std::vector<int64_t>> grids(n);
  for (size_t i = 0; i < n; ++i) {
    BiasGridInto(fecs[i].max_bias, grid_cap, &grids[i]);
  }

  // steps[i]: state (packed candidate indices of FECs [i-γ+1 .. i], or fewer
  // while the window fills) -> best cost and the dropped index for backtrack.
  // Ordered maps so equal-cost ties resolve in lexicographic state order.
  std::vector<std::map<uint64_t, DpEntry>> steps(n);

  // Initialize with FEC 0 alone in the window.
  for (uint8_t c = 0; c < grids[0].size(); ++c) {
    steps[0][PackKey({c})] = DpEntry{0.0, 0xff};
  }

  std::vector<uint8_t> window;
  for (size_t i = 1; i < n; ++i) {
    const size_t prev_window_len = std::min(i, gamma);
    const bool drops = prev_window_len == gamma;
    for (const auto& [prev_key, prev_entry] : steps[i - 1]) {
      // Unpack the previous window (candidate indices of FECs
      // [i-prev_window_len .. i-1]).
      window.assign(prev_window_len, 0);
      uint64_t key = prev_key;
      for (size_t k = prev_window_len; k-- > 0;) {
        window[k] = static_cast<uint8_t>((key & 0xff) - 1);
        key >>= 8;
      }

      const size_t first_fec = i - prev_window_len;
      const int64_t prev_estimator =
          fecs[i - 1].support + grids[i - 1][window.back()];

      for (uint8_t c = 0; c < grids[i].size(); ++c) {
        const int64_t estimator = fecs[i].support + grids[i][c];
        if (estimator <= prev_estimator) continue;  // e_{i-1} < e_i required

        double added = 0.0;
        for (size_t k = 0; k < prev_window_len; ++k) {
          size_t j = first_fec + k;
          int64_t ej = fecs[j].support + grids[j][window[k]];
          added += PairCost(fecs[j], fecs[i], estimator - ej, alpha);
        }

        // Build the new window key: drop the oldest if the window is full.
        uint64_t new_key = 0;
        size_t start = drops ? 1 : 0;
        for (size_t k = start; k < prev_window_len; ++k) {
          new_key = (new_key << 8) | (uint64_t(window[k]) + 1);
        }
        new_key = (new_key << 8) | (uint64_t(c) + 1);

        DpEntry& slot = steps[i][new_key];
        double total = prev_entry.cost + added;
        if (total < slot.cost) {
          slot.cost = total;
          slot.dropped = drops ? window[0] : 0xff;
        }
      }
    }
    assert(!steps[i].empty());
  }

  // Pick the cheapest final state and backtrack.
  uint64_t best_key = 0;
  double best_cost = kInf;
  for (const auto& [key, entry] : steps[n - 1]) {
    if (entry.cost < best_cost) {
      best_cost = entry.cost;
      best_key = key;
    }
  }

  std::vector<uint8_t> choice(n, 0);
  uint64_t key = best_key;
  {
    // The final window covers FECs [n - w .. n-1].
    size_t w = std::min(n, gamma);
    uint64_t k = key;
    for (size_t idx = n; idx-- > n - w;) {
      choice[idx] = static_cast<uint8_t>((k & 0xff) - 1);
      k >>= 8;
    }
    // Walk back: at step i the stored `dropped` is the choice of FEC i - γ.
    for (size_t i = n - 1; i >= gamma; --i) {
      const DpEntry& entry = steps[i].at(key);
      choice[i - gamma] = entry.dropped;
      // Parent key: prepend dropped, remove last.
      std::vector<uint8_t> cur(gamma);
      uint64_t kk = key;
      for (size_t k2 = gamma; k2-- > 0;) {
        cur[k2] = static_cast<uint8_t>((kk & 0xff) - 1);
        kk >>= 8;
      }
      size_t parent_len = std::min(i, gamma);
      // Current window indices are FECs [i-γ+1 .. i]; parent window is
      // [i-parent_len .. i-1] = dropped ++ current[0..γ-2].
      uint64_t parent = 0;
      std::vector<uint8_t> parent_window;
      if (parent_len == gamma) parent_window.push_back(entry.dropped);
      for (size_t k2 = 0; k2 + 1 < gamma; ++k2) parent_window.push_back(cur[k2]);
      for (uint8_t idx : parent_window) parent = (parent << 8) | (uint64_t(idx) + 1);
      key = parent;
    }
  }

  std::vector<double> biases(n);
  for (size_t i = 0; i < n; ++i) {
    biases[i] = static_cast<double>(grids[i][choice[i]]);
  }
  return biases;
}

std::vector<double> OrderPreservingBiases(const std::vector<FecProfile>& fecs,
                                          int64_t alpha,
                                          const OrderOptConfig& opt,
                                          BiasDpScratch* scratch) {
  const size_t n = fecs.size();
  if (n == 0) return {};
  const size_t gamma = std::min<size_t>(opt.gamma, 8);
  if (gamma == 0 || n == 1) return ZeroBiases(n);

  BiasDpScratch local;
  BiasDpScratch& s = scratch ? *scratch : local;

  const size_t grid_cap = DeriveGridCap(opt, gamma);
  if (s.grids.size() < n) s.grids.resize(n);
  if (s.est.size() < n) s.est.resize(n);
  for (size_t i = 0; i < n; ++i) {
    BiasGridInto(fecs[i].max_bias, grid_cap, &s.grids[i]);
    s.est[i].clear();
    s.est[i].reserve(s.grids[i].size());
    for (int64_t b : s.grids[i]) s.est[i].push_back(fecs[i].support + b);
  }

  // State space per step: the mixed-radix product of the window's grid sizes
  // (most significant digit = earliest FEC in the window, so ascending flat
  // index is lexicographic window order). Bail out to the reference when the
  // dense tables would not fit.
  s.state_count.assign(n, 0);
  s.step_offset.assign(n, 0);
  size_t backtrack_bytes = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t w = std::min(i + 1, gamma);
    size_t states = 1;
    for (size_t j = i + 1 - w; j <= i; ++j) {
      states *= s.grids[j].size();
      if (states > kMaxFlatStatesPerStep) {
        return OrderPreservingBiasesReference(fecs, alpha, opt);
      }
    }
    s.state_count[i] = states;
    s.step_offset[i] = backtrack_bytes;
    backtrack_bytes += states;
    if (backtrack_bytes > kMaxFlatBacktrackBytes) {
      return OrderPreservingBiasesReference(fecs, alpha, opt);
    }
  }
  s.dropped.assign(backtrack_bytes, 0xff);

  // Step 0: FEC 0 alone in the window, zero cost for every candidate.
  s.prev_cost.assign(s.state_count[0], 0.0);

  for (size_t i = 1; i < n; ++i) {
    const size_t w_prev = std::min(i, gamma);
    const bool drops = w_prev == gamma;
    const size_t first_fec = i - w_prev;
    const size_t prev_states = s.state_count[i - 1];
    const size_t cur_states = s.state_count[i];
    const size_t r_cur = s.grids[i].size();
    const size_t r_last = s.grids[i - 1].size();
    // Digits kept from the previous window when the oldest drops out.
    const size_t keep = drops ? prev_states / s.grids[first_fec].size() : prev_states;

    s.cur_cost.assign(cur_states, kInf);
    uint8_t* drop_row = s.dropped.data() + s.step_offset[i];
    const int64_t* est_cur = s.est[i].data();

    // First feasible candidate per last-digit value: estimators are
    // ascending in the candidate index, so the e_{i-1} < e_i constraint is a
    // lower bound on c. Two-pointer over the two ascending arrays.
    s.c_min.assign(r_last, static_cast<uint32_t>(r_cur));
    {
      const int64_t* est_prev = s.est[i - 1].data();
      size_t c = 0;
      for (size_t d = 0; d < r_last; ++d) {
        while (c < r_cur && est_cur[c] <= est_prev[d]) ++c;
        s.c_min[d] = static_cast<uint32_t>(c);
      }
    }

    // Pairwise cost tables: T_k[d][c] = cost of FEC (first_fec + k) at
    // candidate d against FEC i at candidate c.
    s.pair_offset.assign(w_prev, 0);
    {
      size_t bytes = 0;
      for (size_t k = 0; k < w_prev; ++k) {
        s.pair_offset[k] = bytes;
        bytes += s.grids[first_fec + k].size() * r_cur;
      }
      s.pair_cost.resize(bytes);
      for (size_t k = 0; k < w_prev; ++k) {
        const size_t j = first_fec + k;
        double* table = s.pair_cost.data() + s.pair_offset[k];
        const int64_t* est_j = s.est[j].data();
        for (size_t d = 0; d < s.grids[j].size(); ++d) {
          for (size_t c = 0; c < r_cur; ++c) {
            table[d * r_cur + c] =
                PairCost(fecs[j], fecs[i], est_cur[c] - est_j[d], alpha);
          }
        }
      }
    }

    // Sweep the previous states in ascending (lexicographic) order,
    // maintaining the window digits as an odometer.
    s.digits.assign(w_prev, 0);
    const double* rows[8];
    for (size_t p = 0; p < prev_states; ++p) {
      const double base_cost = s.prev_cost[p];
      if (base_cost < kInf) {
        for (size_t k = 0; k < w_prev; ++k) {
          rows[k] = s.pair_cost.data() + s.pair_offset[k] +
                    static_cast<size_t>(s.digits[k]) * r_cur;
        }
        const size_t base_state = (drops ? p % keep : p) * r_cur;
        const uint8_t drop_digit = drops ? s.digits[0] : 0xff;
        for (size_t c = s.c_min[s.digits[w_prev - 1]]; c < r_cur; ++c) {
          double added = 0.0;
          for (size_t k = 0; k < w_prev; ++k) added += rows[k][c];
          const double total = base_cost + added;
          double& slot = s.cur_cost[base_state + c];
          if (total < slot) {
            slot = total;
            drop_row[base_state + c] = drop_digit;
          }
        }
      }
      // Advance the odometer (digit radix = the matching FEC's grid size).
      for (size_t k = w_prev; k-- > 0;) {
        if (++s.digits[k] < s.grids[first_fec + k].size()) break;
        s.digits[k] = 0;
      }
    }
    std::swap(s.prev_cost, s.cur_cost);
    assert(std::any_of(s.prev_cost.begin(), s.prev_cost.end(),
                       [](double c) { return c < kInf; }));
  }

  // Pick the cheapest final state (ties to the lexicographically smallest,
  // matching the reference's ordered-map sweep) and backtrack.
  size_t best_state = 0;
  double best_cost = kInf;
  for (size_t p = 0; p < s.state_count[n - 1]; ++p) {
    if (s.prev_cost[p] < best_cost) {
      best_cost = s.prev_cost[p];
      best_state = p;
    }
  }

  s.choice.assign(n, 0);
  {
    // The final window covers FECs [n - w .. n-1].
    const size_t w = std::min(n, gamma);
    size_t idx = best_state;
    for (size_t pos = n; pos-- > n - w;) {
      s.choice[pos] = static_cast<uint8_t>(idx % s.grids[pos].size());
      idx /= s.grids[pos].size();
    }
    // Walk back: at step i the stored `dropped` is the choice of FEC i - γ.
    size_t state = best_state;
    for (size_t i = n - 1; i >= gamma; --i) {
      const uint8_t drop = s.dropped[s.step_offset[i] + state];
      s.choice[i - gamma] = drop;
      // Parent state at step i-1: dropped digit prepended, last removed.
      const size_t keep_prev =
          s.state_count[i - 1] / s.grids[i - gamma].size();
      state = static_cast<size_t>(drop) * keep_prev + state / s.grids[i].size();
    }
  }

  std::vector<double> biases(n);
  for (size_t i = 0; i < n; ++i) {
    biases[i] = static_cast<double>(s.grids[i][s.choice[i]]);
    // Algorithm 1 postcondition: the biased estimators e_i = t_i + β_i stay
    // strictly increasing — the DP admits only candidates that preserve the
    // released support order, and a violation here would let an adversary
    // detect rank inversions across FECs.
    BFLY_DCHECK_MSG(
        i == 0 || static_cast<double>(fecs[i - 1].support) + biases[i - 1] <
                      static_cast<double>(fecs[i].support) + biases[i],
        "order-preserving DP produced a non-monotone estimator");
  }
  return biases;
}

std::vector<double> RatioPreservingBiases(const std::vector<FecProfile>& fecs) {
  const size_t n = fecs.size();
  std::vector<double> biases(n, 0.0);
  if (n == 0) return biases;
  double t1 = static_cast<double>(fecs[0].support);
  double beta1 = fecs[0].max_bias;
  for (size_t i = 0; i < n; ++i) {
    double proportional = beta1 * static_cast<double>(fecs[i].support) / t1;
    biases[i] = std::min(proportional, fecs[i].max_bias);
  }
  return biases;
}

std::vector<double> HybridBiases(const std::vector<FecProfile>& fecs,
                                 const std::vector<double>& order_biases,
                                 const std::vector<double>& ratio_biases,
                                 double lambda) {
  assert(fecs.size() == order_biases.size());
  assert(fecs.size() == ratio_biases.size());
  std::vector<double> biases(fecs.size());
  for (size_t i = 0; i < fecs.size(); ++i) {
    double blended =
        lambda * order_biases[i] + (1.0 - lambda) * ratio_biases[i];
    biases[i] = std::clamp(blended, -fecs[i].max_bias, fecs[i].max_bias);
  }
  return biases;
}

}  // namespace butterfly
