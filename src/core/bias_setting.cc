#include "core/bias_setting.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <thread>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

#include "common/check.h"
#include "common/thread_pool.h"

namespace butterfly {

std::vector<double> ZeroBiases(size_t n) { return std::vector<double>(n, 0.0); }

namespace internal {
bool g_bias_kernel_force_scalar = false;
}  // namespace internal

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Hard ceilings on the dense flat tables: per-step states and total
/// backtrack bytes. Configurations beyond them (extreme γ × grid products far
/// past the default max_states budget) route to the sparse generation-buffer
/// frontier, which materializes only reachable states.
constexpr size_t kMaxFlatStatesPerStep = size_t{1} << 20;
constexpr size_t kMaxFlatBacktrackBytes = size_t{1} << 24;

/// Ceiling on precomputing every step's pairwise-cost table at once (in
/// doubles — 32 MiB). Above it the tables are built per step into a single
/// reused buffer, trading the parallel upfront build for bounded memory.
constexpr size_t kMaxPairTableDoubles = size_t{1} << 22;

/// Minimum per-step work (cell updates × window length) before the step is
/// dispatched to the helper crew; below it the handoff costs more than the
/// sweep.
constexpr size_t kDpParallelStepWork = size_t{1} << 13;
constexpr size_t kMaxDpHelpers = 7;
constexpr int kDpSpinIterations = 4096;

/// Producers per chunk when the sparse frontier fans the candidate sweep out
/// over the pool.
constexpr size_t kSparseFrontierChunk = 256;

// Integer bias candidates for one FEC: a symmetric grid over [−βᵐ, βᵐ] with
// at most `max_candidates` points, always containing 0 (so the zero-bias
// configuration — feasible because supports are strictly increasing — is
// always reachable). Writes into *out to reuse its capacity across calls.
void BiasGridInto(double max_bias, size_t max_candidates,
                  std::vector<int64_t>* out) {
  out->clear();
  int64_t bound = static_cast<int64_t>(std::floor(max_bias));
  if (bound <= 0 || max_candidates <= 1) {
    out->push_back(0);
    return;
  }
  size_t span = static_cast<size_t>(2 * bound + 1);
  size_t points = std::min(max_candidates | 1u, span);  // odd => includes 0
  out->reserve(points);
  for (size_t i = 0; i < points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points - 1);
    const double spread = static_cast<double>(bound);
    out->push_back(
        static_cast<int64_t>(std::llround(-spread + frac * 2.0 * spread)));
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

// Pairwise inversion-risk cost (the objective of Algorithm 1): zero once the
// uncertainty regions are separated by at least α + 1.
double PairCost(const FecProfile& a, const FecProfile& b, int64_t distance,
                int64_t alpha) {
  if (distance >= alpha + 1) return 0.0;
  double gap = static_cast<double>(alpha + 1 - distance);
  return static_cast<double>(a.member_count + b.member_count) * gap * gap;
}

/// The per-FEC grid size for one state budget: the DP window holds γ FECs,
/// so grids of size G yield at most G^γ states.
size_t DeriveGridCap(const OrderOptConfig& opt, size_t gamma) {
  size_t grid_cap = opt.max_candidates;
  if (gamma > 1) {
    double budget = std::pow(static_cast<double>(opt.max_states),
                             1.0 / static_cast<double>(gamma));
    grid_cap = std::min<size_t>(
        grid_cap, std::max<size_t>(3, static_cast<size_t>(budget)));
  }
  // Candidate indices are bytes (0xff is the "nothing dropped" sentinel), so
  // a grid never exceeds 255 points.
  return std::min<size_t>(grid_cap, 255);
}

// Packs up to 8 candidate indices (each < 255) into a state key. The first
// window element lands in the most significant byte, so ascending key order
// is lexicographic window order — the tie-break order shared with the
// flat-table DP.
uint64_t PackKey(const std::vector<uint8_t>& window) {
  uint64_t key = 0;
  for (uint8_t idx : window) key = (key << 8) | (uint64_t(idx) + 1);
  return key;
}

struct DpEntry {
  double cost = kInf;
  uint8_t dropped = 0xff;  // candidate index of the FEC that left the window
};

inline void CpuRelax() {
#if defined(__SSE2__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

// ---------------------------------------------------------------------------
// Row kernels. All three variants perform the same per-element IEEE
// operations in the same order, so scalar and SIMD results are bit-identical;
// the force-scalar hook lets tests pin that equivalence.
// ---------------------------------------------------------------------------

void AccumulateRowScalar(double* acc, const double* row, size_t n) {
  for (size_t c = 0; c < n; ++c) acc[c] += row[c];
}

void MinMergeRowScalar(double* best, uint8_t* drop, const double* add,
                       double base, uint8_t dropped, size_t c0, size_t n) {
  for (size_t c = c0; c < n; ++c) {
    const double total = base + add[c];
    if (total < best[c]) {
      best[c] = total;
      drop[c] = dropped;
    }
  }
}

#if defined(__SSE2__)

void AccumulateRowSimd(double* acc, const double* row, size_t n) {
  size_t c = 0;
#if defined(__AVX2__)
  for (; c + 4 <= n; c += 4) {
    _mm256_storeu_pd(acc + c, _mm256_add_pd(_mm256_loadu_pd(acc + c),
                                            _mm256_loadu_pd(row + c)));
  }
#endif
  for (; c + 2 <= n; c += 2) {
    _mm_storeu_pd(acc + c,
                  _mm_add_pd(_mm_loadu_pd(acc + c), _mm_loadu_pd(row + c)));
  }
  for (; c < n; ++c) acc[c] += row[c];
}

void MinMergeRowSimd(double* best, uint8_t* drop, const double* add,
                     double base, uint8_t dropped, size_t c0, size_t n) {
  size_t c = c0;
#if defined(__AVX2__)
  const __m256d base4 = _mm256_set1_pd(base);
  for (; c + 4 <= n; c += 4) {
    const __m256d total = _mm256_add_pd(base4, _mm256_loadu_pd(add + c));
    const __m256d cur = _mm256_loadu_pd(best + c);
    const __m256d lt = _mm256_cmp_pd(total, cur, _CMP_LT_OQ);
    const int mask = _mm256_movemask_pd(lt);
    if (mask == 0) continue;
    _mm256_storeu_pd(best + c, _mm256_blendv_pd(cur, total, lt));
    for (int b = 0; b < 4; ++b) {
      if (mask & (1 << b)) drop[c + b] = dropped;
    }
  }
#endif
  const __m128d base2 = _mm_set1_pd(base);
  for (; c + 2 <= n; c += 2) {
    const __m128d total = _mm_add_pd(base2, _mm_loadu_pd(add + c));
    const __m128d cur = _mm_loadu_pd(best + c);
    const __m128d lt = _mm_cmplt_pd(total, cur);
    const int mask = _mm_movemask_pd(lt);
    if (mask == 0) continue;
    _mm_storeu_pd(best + c,
                  _mm_or_pd(_mm_and_pd(lt, total), _mm_andnot_pd(lt, cur)));
    if (mask & 1) drop[c] = dropped;
    if (mask & 2) drop[c + 1] = dropped;
  }
  for (; c < n; ++c) {
    const double total = base + add[c];
    if (total < best[c]) {
      best[c] = total;
      drop[c] = dropped;
    }
  }
}

#endif  // __SSE2__

inline void AccumulateRow(double* acc, const double* row, size_t n) {
#if defined(__SSE2__)
  if (!internal::g_bias_kernel_force_scalar) {
    AccumulateRowSimd(acc, row, n);
    return;
  }
#endif
  AccumulateRowScalar(acc, row, n);
}

inline void MinMergeRow(double* best, uint8_t* drop, const double* add,
                        double base, uint8_t dropped, size_t c0, size_t n) {
#if defined(__SSE2__)
  if (!internal::g_bias_kernel_force_scalar) {
    MinMergeRowSimd(best, drop, add, base, dropped, c0, n);
    return;
  }
#endif
  MinMergeRowScalar(best, drop, add, base, dropped, c0, n);
}

// ---------------------------------------------------------------------------
// Output-major step kernel. One DP step maps previous states p to output
// slots (q, c) where q = p % keep is the part of the window that survives and
// d0 = p / keep is the dropped digit. For a fixed slot, the serial sweep's
// updates arrive in ascending d0 with strict-< wins; the kernel replays
// exactly that order per slot, so partitioning the q axis across threads
// cannot change any cost, tie-break, or backtrack byte.
// ---------------------------------------------------------------------------

/// Everything one step needs, by value or raw pointer, so the parallel region
/// can hand it to helpers without touching the scratch object.
struct StepJob {
  const double* prev_cost = nullptr;
  double* cur_cost = nullptr;
  uint8_t* drop_row = nullptr;
  const double* pair = nullptr;     ///< this step's pairwise-cost tables
  const uint32_t* c_min = nullptr;  ///< per last-digit feasibility bound
  size_t pair_off[8] = {};          ///< per window position into `pair`
  size_t radix[8] = {};             ///< grid sizes of the window's FECs
  size_t w = 0;                     ///< previous window length
  size_t r_cur = 0;                 ///< grid size of the entering FEC
  size_t keep = 0;                  ///< surviving-state count (the q axis)
  bool drops = false;               ///< window full: oldest FEC leaves
};

void RunBiasStepRange(const StepJob& j, size_t q_begin, size_t q_end) {
  alignas(32) double acc[256];
  uint8_t dig[8] = {0};
  const size_t w = j.w;
  const size_t r_cur = j.r_cur;
  const size_t first_pos = j.drops ? 1 : 0;
  // Decode q_begin into the surviving window digits (mixed radix, last digit
  // least significant); the loop advances them as an odometer.
  {
    size_t rem = q_begin;
    for (size_t k = w; k-- > first_pos;) {
      dig[k] = static_cast<uint8_t>(rem % j.radix[k]);
      rem /= j.radix[k];
    }
  }
  for (size_t q = q_begin; q < q_end; ++q) {
    double* out = j.cur_cost + q * r_cur;
    uint8_t* dr = j.drop_row + q * r_cur;
    for (size_t c = 0; c < r_cur; ++c) out[c] = kInf;
    if (j.drops) {
      const size_t r_first = j.radix[0];
      if (w == 1) {
        // γ = 1: the dropped digit is also the window's last digit, so the
        // feasibility bound varies with d0.
        for (size_t d0 = 0; d0 < r_first; ++d0) {
          const double base = j.prev_cost[d0];
          if (!(base < kInf)) continue;
          const double* row0 = j.pair + j.pair_off[0] + d0 * r_cur;
          MinMergeRow(out, dr, row0, base, static_cast<uint8_t>(d0),
                      j.c_min[d0], r_cur);
        }
      } else {
        const size_t c_min = j.c_min[dig[w - 1]];
        for (size_t d0 = 0; d0 < r_first; ++d0) {
          const double base = j.prev_cost[d0 * j.keep + q];
          if (!(base < kInf)) continue;
          // acc = row0 + Σ row_k, accumulated elementwise in window order —
          // the same association as the serial added-loop, so every double
          // matches bit for bit.
          std::memcpy(acc, j.pair + j.pair_off[0] + d0 * r_cur,
                      r_cur * sizeof(double));
          for (size_t k = 1; k < w; ++k) {
            AccumulateRow(acc, j.pair + j.pair_off[k] + size_t(dig[k]) * r_cur,
                          r_cur);
          }
          MinMergeRow(out, dr, acc, base, static_cast<uint8_t>(d0), c_min,
                      r_cur);
        }
      }
    } else {
      const double base = j.prev_cost[q];
      if (base < kInf) {
        const size_t c_min = j.c_min[dig[w - 1]];
        const double* add = j.pair + j.pair_off[0] + size_t(dig[0]) * r_cur;
        if (w > 1) {
          std::memcpy(acc, add, r_cur * sizeof(double));
          for (size_t k = 1; k < w; ++k) {
            AccumulateRow(acc, j.pair + j.pair_off[k] + size_t(dig[k]) * r_cur,
                          r_cur);
          }
          add = acc;
        }
        MinMergeRow(out, dr, add, base, uint8_t{0xff}, c_min, r_cur);
      }
    }
    for (size_t k = w; k-- > first_pos;) {
      if (++dig[k] < j.radix[k]) break;
      dig[k] = 0;
    }
  }
}

/// Fills the pairwise-cost tables (k-major, each T_k laid out [d][c]) and the
/// per-last-digit feasibility bounds for step \p i. Pure function of the
/// grids/estimators, so steps can be built in parallel into disjoint slices.
void BuildStepTables(const std::vector<FecProfile>& fecs,
                     const std::vector<std::vector<int64_t>>& grids,
                     const std::vector<std::vector<int64_t>>& est,
                     int64_t alpha, size_t i, size_t gamma, double* pair_dst,
                     uint32_t* c_min_dst) {
  const size_t w = std::min(i, gamma);
  const size_t first_fec = i - w;
  const size_t r_cur = grids[i].size();
  const int64_t* est_cur = est[i].data();
  // First feasible candidate per last-digit value: estimators are ascending
  // in the candidate index, so the e_{i-1} < e_i constraint is a lower bound
  // on c. Two-pointer over the two ascending arrays.
  {
    const int64_t* est_prev = est[i - 1].data();
    const size_t r_last = grids[i - 1].size();
    size_t c = 0;
    for (size_t d = 0; d < r_last; ++d) {
      while (c < r_cur && est_cur[c] <= est_prev[d]) ++c;
      c_min_dst[d] = static_cast<uint32_t>(c);
    }
  }
  double* table = pair_dst;
  for (size_t k = 0; k < w; ++k) {
    const size_t j = first_fec + k;
    const int64_t* est_j = est[j].data();
    for (size_t d = 0; d < grids[j].size(); ++d) {
      for (size_t c = 0; c < r_cur; ++c) {
        table[d * r_cur + c] =
            PairCost(fecs[j], fecs[i], est_cur[c] - est_j[d], alpha);
      }
    }
    table += grids[j].size() * r_cur;
  }
}

// ---------------------------------------------------------------------------
// Lock-free single-dispatch parallel region. Helpers are submitted to the
// pool ONCE per DP call and then fed one job per big step through atomics —
// no per-step Submit, no joins. The caller always participates, so progress
// never depends on a helper actually being scheduled (important when the DP
// itself runs on a pool worker during pipelined Release: queued helpers may
// start late or never, and simply observe the done sentinel).
// ---------------------------------------------------------------------------

constexpr uint64_t kDpRegionDone = ~uint64_t{0};

struct DpRegion {
  /// Even values publish a job (0 = none yet); odd values mean the caller is
  /// mutating the payload; kDpRegionDone retires the helpers.
  std::atomic<uint64_t> job{0};
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> done{0};
  std::atomic<int> active{0};
  // Job payload: written only while `job` is odd and `active` == 0, read
  // only by threads that re-verified an even `job` after registering in
  // `active` — see the seq_cst handshake in DpHelperLoop / PublishStep.
  StepJob step;
  size_t chunk = 1;
};

void DpClaimChunks(DpRegion* r) {
  const StepJob& step = r->step;
  const size_t chunk = r->chunk;
  const size_t n = step.keep;
  for (;;) {
    const size_t begin = r->cursor.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= n) break;
    const size_t end = std::min(begin + chunk, n);
    RunBiasStepRange(step, begin, end);
    if (r->done.fetch_add(end - begin, std::memory_order_acq_rel) +
            (end - begin) ==
        n) {
      r->done.notify_all();
    }
  }
}

void DpHelperLoop(std::shared_ptr<DpRegion> r) {
  uint64_t seen = 0;
  for (;;) {
    uint64_t j = r->job.load(std::memory_order_acquire);
    if (j == kDpRegionDone) return;
    if (j == seen || (j & 1) != 0) {
      // Steps arrive back to back within one DP call: spin briefly before
      // paying for a futex wait.
      bool advanced = false;
      for (int spin = 0; spin < kDpSpinIterations; ++spin) {
        CpuRelax();
        if (r->job.load(std::memory_order_acquire) != j) {
          advanced = true;
          break;
        }
      }
      if (!advanced) r->job.wait(j, std::memory_order_acquire);
      continue;
    }
    // Dekker-style handshake with the caller: register, then re-verify the
    // job id. Either we see the caller's odd "preparing" store and back out,
    // or the caller sees our registration and waits for us to finish.
    r->active.fetch_add(1, std::memory_order_seq_cst);
    if (r->job.load(std::memory_order_seq_cst) != j) {
      r->active.fetch_sub(1, std::memory_order_acq_rel);
      r->active.notify_all();
      continue;
    }
    seen = j;
    DpClaimChunks(r.get());
    r->active.fetch_sub(1, std::memory_order_acq_rel);
    r->active.notify_all();
  }
}

void WaitForIdleHelpers(DpRegion* r) {
  for (;;) {
    const int a = r->active.load(std::memory_order_seq_cst);
    if (a == 0) return;
    r->active.wait(a, std::memory_order_acquire);
  }
}

/// Publishes one step to the helpers, participates, and returns once every
/// output slot is written and no helper still touches the payload.
void RunStepParallel(DpRegion* r, uint64_t* job_id, const StepJob& job,
                     size_t participants) {
  r->job.store(*job_id + 1, std::memory_order_seq_cst);  // odd: preparing
  WaitForIdleHelpers(r);
  r->step = job;
  r->chunk = std::max<size_t>(1, job.keep / (participants * 4));
  r->cursor.store(0, std::memory_order_relaxed);
  r->done.store(0, std::memory_order_relaxed);
  *job_id += 2;
  r->job.store(*job_id, std::memory_order_release);
  r->job.notify_all();
  DpClaimChunks(r);
  for (;;) {
    const size_t d = r->done.load(std::memory_order_acquire);
    if (d == job.keep) break;
    bool advanced = false;
    for (int spin = 0; spin < kDpSpinIterations; ++spin) {
      CpuRelax();
      if (r->done.load(std::memory_order_acquire) != d) {
        advanced = true;
        break;
      }
    }
    if (!advanced) r->done.wait(d, std::memory_order_acquire);
  }
}

}  // namespace

std::vector<double> OrderPreservingBiasesReference(
    const std::vector<FecProfile>& fecs, int64_t alpha,
    const OrderOptConfig& opt) {
  const size_t n = fecs.size();
  if (n == 0) return {};
  const size_t gamma = std::min<size_t>(opt.gamma, 8);
  if (gamma == 0 || n == 1) return ZeroBiases(n);

  const size_t grid_cap = DeriveGridCap(opt, gamma);
  std::vector<std::vector<int64_t>> grids(n);
  for (size_t i = 0; i < n; ++i) {
    BiasGridInto(fecs[i].max_bias, grid_cap, &grids[i]);
  }

  // steps[i]: state (packed candidate indices of FECs [i-γ+1 .. i], or fewer
  // while the window fills) -> best cost and the dropped index for backtrack.
  // Ordered maps so equal-cost ties resolve in lexicographic state order.
  std::vector<std::map<uint64_t, DpEntry>> steps(n);

  // Initialize with FEC 0 alone in the window.
  for (uint8_t c = 0; c < grids[0].size(); ++c) {
    steps[0][PackKey({c})] = DpEntry{0.0, 0xff};
  }

  std::vector<uint8_t> window;
  for (size_t i = 1; i < n; ++i) {
    const size_t prev_window_len = std::min(i, gamma);
    const bool drops = prev_window_len == gamma;
    for (const auto& [prev_key, prev_entry] : steps[i - 1]) {
      // Unpack the previous window (candidate indices of FECs
      // [i-prev_window_len .. i-1]).
      window.assign(prev_window_len, 0);
      uint64_t key = prev_key;
      for (size_t k = prev_window_len; k-- > 0;) {
        window[k] = static_cast<uint8_t>((key & 0xff) - 1);
        key >>= 8;
      }

      const size_t first_fec = i - prev_window_len;
      const int64_t prev_estimator =
          fecs[i - 1].support + grids[i - 1][window.back()];

      for (uint8_t c = 0; c < grids[i].size(); ++c) {
        const int64_t estimator = fecs[i].support + grids[i][c];
        if (estimator <= prev_estimator) continue;  // e_{i-1} < e_i required

        double added = 0.0;
        for (size_t k = 0; k < prev_window_len; ++k) {
          size_t j = first_fec + k;
          int64_t ej = fecs[j].support + grids[j][window[k]];
          added += PairCost(fecs[j], fecs[i], estimator - ej, alpha);
        }

        // Build the new window key: drop the oldest if the window is full.
        uint64_t new_key = 0;
        size_t start = drops ? 1 : 0;
        for (size_t k = start; k < prev_window_len; ++k) {
          new_key = (new_key << 8) | (uint64_t(window[k]) + 1);
        }
        new_key = (new_key << 8) | (uint64_t(c) + 1);

        DpEntry& slot = steps[i][new_key];
        double total = prev_entry.cost + added;
        if (total < slot.cost) {
          slot.cost = total;
          slot.dropped = drops ? window[0] : 0xff;
        }
      }
    }
    assert(!steps[i].empty());
  }

  // Pick the cheapest final state and backtrack.
  uint64_t best_key = 0;
  double best_cost = kInf;
  for (const auto& [key, entry] : steps[n - 1]) {
    if (entry.cost < best_cost) {
      best_cost = entry.cost;
      best_key = key;
    }
  }

  std::vector<uint8_t> choice(n, 0);
  uint64_t key = best_key;
  {
    // The final window covers FECs [n - w .. n-1].
    size_t w = std::min(n, gamma);
    uint64_t k = key;
    for (size_t idx = n; idx-- > n - w;) {
      choice[idx] = static_cast<uint8_t>((k & 0xff) - 1);
      k >>= 8;
    }
    // Walk back: at step i the stored `dropped` is the choice of FEC i - γ.
    for (size_t i = n - 1; i >= gamma; --i) {
      const DpEntry& entry = steps[i].at(key);
      choice[i - gamma] = entry.dropped;
      // Parent key: prepend dropped, remove last.
      std::vector<uint8_t> cur(gamma);
      uint64_t kk = key;
      for (size_t k2 = gamma; k2-- > 0;) {
        cur[k2] = static_cast<uint8_t>((kk & 0xff) - 1);
        kk >>= 8;
      }
      size_t parent_len = std::min(i, gamma);
      // Current window indices are FECs [i-γ+1 .. i]; parent window is
      // [i-parent_len .. i-1] = dropped ++ current[0..γ-2].
      uint64_t parent = 0;
      std::vector<uint8_t> parent_window;
      if (parent_len == gamma) parent_window.push_back(entry.dropped);
      for (size_t k2 = 0; k2 + 1 < gamma; ++k2) parent_window.push_back(cur[k2]);
      for (uint8_t idx : parent_window) parent = (parent << 8) | (uint64_t(idx) + 1);
      key = parent;
    }
  }

  std::vector<double> biases(n);
  for (size_t i = 0; i < n; ++i) {
    biases[i] = static_cast<double>(grids[i][choice[i]]);
  }
  return biases;
}

std::vector<double> OrderPreservingBiases(const std::vector<FecProfile>& fecs,
                                          int64_t alpha,
                                          const OrderOptConfig& opt,
                                          BiasDpScratch* scratch,
                                          ThreadPool* pool) {
  const size_t n = fecs.size();
  if (n == 0) return {};
  const size_t gamma = std::min<size_t>(opt.gamma, 8);
  if (gamma == 0 || n == 1) return ZeroBiases(n);

  BiasDpScratch local;
  BiasDpScratch& s = scratch ? *scratch : local;

  const size_t grid_cap = DeriveGridCap(opt, gamma);
  if (s.grids.size() < n) s.grids.resize(n);
  if (s.est.size() < n) s.est.resize(n);
  for (size_t i = 0; i < n; ++i) {
    BiasGridInto(fecs[i].max_bias, grid_cap, &s.grids[i]);
    s.est[i].clear();
    s.est[i].reserve(s.grids[i].size());
    for (int64_t b : s.grids[i]) s.est[i].push_back(fecs[i].support + b);
  }

  // State space per step: the mixed-radix product of the window's grid sizes
  // (most significant digit = earliest FEC in the window, so ascending flat
  // index is lexicographic window order). Route to the sparse frontier when
  // the dense tables would not fit.
  s.state_count.assign(n, 0);
  s.step_offset.assign(n, 0);
  size_t backtrack_bytes = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t w = std::min(i + 1, gamma);
    size_t states = 1;
    for (size_t j = i + 1 - w; j <= i; ++j) {
      states *= s.grids[j].size();
      if (states > kMaxFlatStatesPerStep) {
        return OrderPreservingBiasesSparse(fecs, alpha, opt, pool);
      }
    }
    s.state_count[i] = states;
    s.step_offset[i] = backtrack_bytes;
    backtrack_bytes += states;
    if (backtrack_bytes > kMaxFlatBacktrackBytes) {
      return OrderPreservingBiasesSparse(fecs, alpha, opt, pool);
    }
  }
  s.dropped.assign(backtrack_bytes, 0xff);

  // Pairwise cost tables and feasibility bounds. When the total fits the
  // budget, every step's tables are built upfront in one parallel sweep
  // (pure writes to disjoint slices); otherwise they are rebuilt per step
  // into a single reused buffer.
  s.pair_base.assign(n, 0);
  s.c_min_base.assign(n, 0);
  size_t pair_doubles = 0;
  size_t max_step_doubles = 0;
  size_t c_min_entries = 0;
  for (size_t i = 1; i < n; ++i) {
    const size_t w = std::min(i, gamma);
    const size_t first_fec = i - w;
    size_t step_doubles = 0;
    for (size_t k = 0; k < w; ++k) {
      step_doubles += s.grids[first_fec + k].size() * s.grids[i].size();
    }
    s.pair_base[i] = pair_doubles;
    pair_doubles += step_doubles;
    max_step_doubles = std::max(max_step_doubles, step_doubles);
    s.c_min_base[i] = c_min_entries;
    c_min_entries += s.grids[i - 1].size();
  }
  s.c_min.resize(c_min_entries);
  const bool precompute_all = pair_doubles <= kMaxPairTableDoubles;
  if (precompute_all) {
    s.pair_cost.resize(pair_doubles);
    ParallelFor(pool, n - 1, 4, [&](size_t begin, size_t end) {
      for (size_t idx = begin; idx < end; ++idx) {
        const size_t i = idx + 1;
        BuildStepTables(fecs, s.grids, s.est, alpha, i, gamma,
                        s.pair_cost.data() + s.pair_base[i],
                        s.c_min.data() + s.c_min_base[i]);
      }
    });
  } else {
    s.pair_cost.resize(max_step_doubles);
  }

  // Spin up the helper crew once if any step is big enough to amortize the
  // per-step handoff.
  size_t max_step_work = 0;
  for (size_t i = 1; i < n; ++i) {
    const size_t w = std::min(i, gamma);
    max_step_work = std::max(
        max_step_work, s.state_count[i - 1] * s.grids[i].size() * w);
  }
  std::shared_ptr<DpRegion> region;
  size_t dp_helpers = 0;
  if (pool != nullptr && max_step_work >= kDpParallelStepWork) {
    const size_t busy = ThreadPool::OnWorkerThread() ? 1 : 0;
    const size_t avail =
        pool->worker_count() > busy ? pool->worker_count() - busy : 0;
    if (avail > 0) {
      dp_helpers = std::min(avail, kMaxDpHelpers);
      region = std::make_shared<DpRegion>();
      for (size_t h = 0; h < dp_helpers; ++h) {
        pool->Submit([region] { DpHelperLoop(region); });
      }
    }
  }
  uint64_t job_id = 0;

  // Step 0: FEC 0 alone in the window, zero cost for every candidate.
  s.prev_cost.assign(s.state_count[0], 0.0);

  for (size_t i = 1; i < n; ++i) {
    const size_t w_prev = std::min(i, gamma);
    const bool drops = w_prev == gamma;
    const size_t first_fec = i - w_prev;
    const size_t prev_states = s.state_count[i - 1];
    const size_t cur_states = s.state_count[i];
    const size_t r_cur = s.grids[i].size();
    // Digits kept from the previous window when the oldest drops out.
    const size_t keep =
        drops ? prev_states / s.grids[first_fec].size() : prev_states;

    // No kInf fill: the kernel overwrites every output slot of every row.
    if (s.cur_cost.size() < cur_states) s.cur_cost.resize(cur_states);

    if (!precompute_all) {
      BuildStepTables(fecs, s.grids, s.est, alpha, i, gamma,
                      s.pair_cost.data(), s.c_min.data() + s.c_min_base[i]);
    }

    StepJob job;
    job.prev_cost = s.prev_cost.data();
    job.cur_cost = s.cur_cost.data();
    job.drop_row = s.dropped.data() + s.step_offset[i];
    job.pair = s.pair_cost.data() + (precompute_all ? s.pair_base[i] : 0);
    job.c_min = s.c_min.data() + s.c_min_base[i];
    {
      size_t off = 0;
      for (size_t k = 0; k < w_prev; ++k) {
        job.pair_off[k] = off;
        job.radix[k] = s.grids[first_fec + k].size();
        off += job.radix[k] * r_cur;
      }
    }
    job.w = w_prev;
    job.r_cur = r_cur;
    job.keep = keep;
    job.drops = drops;

    const size_t step_work = prev_states * r_cur * w_prev;
    if (region && keep >= 2 && step_work >= kDpParallelStepWork) {
      RunStepParallel(region.get(), &job_id, job, dp_helpers + 1);
    } else {
      RunBiasStepRange(job, 0, keep);
    }
    std::swap(s.prev_cost, s.cur_cost);
    assert(std::any_of(s.prev_cost.begin(), s.prev_cost.begin() + cur_states,
                       [](double c) { return c < kInf; }));
  }
  if (region) {
    region->job.store(kDpRegionDone, std::memory_order_release);
    region->job.notify_all();
  }

  // Pick the cheapest final state (ties to the lexicographically smallest,
  // matching the reference's ordered-map sweep) and backtrack.
  size_t best_state = 0;
  double best_cost = kInf;
  for (size_t p = 0; p < s.state_count[n - 1]; ++p) {
    if (s.prev_cost[p] < best_cost) {
      best_cost = s.prev_cost[p];
      best_state = p;
    }
  }

  s.choice.assign(n, 0);
  {
    // The final window covers FECs [n - w .. n-1].
    const size_t w = std::min(n, gamma);
    size_t idx = best_state;
    for (size_t pos = n; pos-- > n - w;) {
      s.choice[pos] = static_cast<uint8_t>(idx % s.grids[pos].size());
      idx /= s.grids[pos].size();
    }
    // Walk back: at step i the stored `dropped` is the choice of FEC i - γ.
    size_t state = best_state;
    for (size_t i = n - 1; i >= gamma; --i) {
      const uint8_t drop = s.dropped[s.step_offset[i] + state];
      s.choice[i - gamma] = drop;
      // Parent state at step i-1: dropped digit prepended, last removed.
      const size_t keep_prev =
          s.state_count[i - 1] / s.grids[i - gamma].size();
      state = static_cast<size_t>(drop) * keep_prev + state / s.grids[i].size();
    }
  }

  std::vector<double> biases(n);
  for (size_t i = 0; i < n; ++i) {
    biases[i] = static_cast<double>(s.grids[i][s.choice[i]]);
    // Algorithm 1 postcondition: the biased estimators e_i = t_i + β_i stay
    // strictly increasing — the DP admits only candidates that preserve the
    // released support order, and a violation here would let an adversary
    // detect rank inversions across FECs.
    BFLY_DCHECK_MSG(
        i == 0 || static_cast<double>(fecs[i - 1].support) + biases[i - 1] <
                      static_cast<double>(fecs[i].support) + biases[i],
        "order-preserving DP produced a non-monotone estimator");
  }
  return biases;
}

namespace {

/// One materialized state of the sparse frontier.
struct FrontierEntry {
  uint64_t key = 0;      ///< packed candidate window (PackKey layout)
  double cost = kInf;
  uint8_t dropped = 0xff;
};

/// The deterministic reduction of a generation buffer: stable-sort by key,
/// then keep the first minimal-cost entry of every key run. Producers append
/// in ascending (prev-state rank, candidate) order — the exact order the
/// map-based reference applies its strict-< updates — so "first minimal
/// wins" reproduces the reference's tie-breaks bit for bit, and the result
/// is a frontier sorted by key (= lexicographic window order).
void SortAndMinMergeFrontier(std::vector<FrontierEntry>* frontier) {
  std::stable_sort(frontier->begin(), frontier->end(),
                   [](const FrontierEntry& a, const FrontierEntry& b) {
                     return a.key < b.key;
                   });
  size_t out = 0;
  size_t idx = 0;
  const size_t size = frontier->size();
  while (idx < size) {
    FrontierEntry best = (*frontier)[idx];
    size_t run = idx + 1;
    while (run < size && (*frontier)[run].key == best.key) {
      if ((*frontier)[run].cost < best.cost) best = (*frontier)[run];
      ++run;
    }
    (*frontier)[out++] = best;
    idx = run;
  }
  frontier->resize(out);
}

}  // namespace

std::vector<double> OrderPreservingBiasesSparse(
    const std::vector<FecProfile>& fecs, int64_t alpha,
    const OrderOptConfig& opt, ThreadPool* pool) {
  const size_t n = fecs.size();
  if (n == 0) return {};
  const size_t gamma = std::min<size_t>(opt.gamma, 8);
  if (gamma == 0 || n == 1) return ZeroBiases(n);

  const size_t grid_cap = DeriveGridCap(opt, gamma);
  std::vector<std::vector<int64_t>> grids(n);
  std::vector<std::vector<int64_t>> est(n);
  for (size_t i = 0; i < n; ++i) {
    BiasGridInto(fecs[i].max_bias, grid_cap, &grids[i]);
    est[i].reserve(grids[i].size());
    for (int64_t b : grids[i]) est[i].push_back(fecs[i].support + b);
  }

  // steps[i]: the reachable states after placing FEC i, sorted by packed key.
  std::vector<std::vector<FrontierEntry>> steps(n);
  steps[0].reserve(grids[0].size());
  for (uint8_t c = 0; c < grids[0].size(); ++c) {
    steps[0].push_back(FrontierEntry{PackKey({c}), 0.0, 0xff});
  }

  std::vector<double> pair_cost;
  std::vector<uint32_t> c_min;
  for (size_t i = 1; i < n; ++i) {
    const size_t w_prev = std::min(i, gamma);
    const bool drops = w_prev == gamma;
    const size_t first_fec = i - w_prev;
    const size_t r_cur = grids[i].size();

    size_t pair_doubles = 0;
    size_t pair_off[8] = {};
    for (size_t k = 0; k < w_prev; ++k) {
      pair_off[k] = pair_doubles;
      pair_doubles += grids[first_fec + k].size() * r_cur;
    }
    pair_cost.resize(pair_doubles);
    c_min.resize(grids[i - 1].size());
    BuildStepTables(fecs, grids, est, alpha, i, gamma, pair_cost.data(),
                    c_min.data());

    const std::vector<FrontierEntry>& prev = steps[i - 1];
    // Candidate production: fixed-size chunks of previous states, each chunk
    // writing its own buffer, concatenated in chunk order afterwards — the
    // buffer order is therefore (prev-state rank, candidate) ascending no
    // matter how chunks were scheduled.
    const size_t chunks =
        (prev.size() + kSparseFrontierChunk - 1) / kSparseFrontierChunk;
    std::vector<std::vector<FrontierEntry>> produced(chunks);
    ParallelFor(pool, chunks, 1, [&](size_t begin, size_t end) {
      for (size_t ch = begin; ch < end; ++ch) {
        const size_t p_begin = ch * kSparseFrontierChunk;
        const size_t p_end =
            std::min(p_begin + kSparseFrontierChunk, prev.size());
        std::vector<FrontierEntry>& out = produced[ch];
        out.reserve((p_end - p_begin) * r_cur);
        uint8_t dig[8] = {0};
        for (size_t p = p_begin; p < p_end; ++p) {
          const FrontierEntry& entry = prev[p];
          uint64_t key = entry.key;
          for (size_t k = w_prev; k-- > 0;) {
            dig[k] = static_cast<uint8_t>((key & 0xff) - 1);
            key >>= 8;
          }
          const uint8_t dropped = drops ? dig[0] : 0xff;
          // Surviving digits of the packed key, shifted up one byte to make
          // room for the entering candidate.
          const uint64_t kept_mask =
              drops ? ((uint64_t{1} << (8 * (w_prev - 1))) - 1) : ~uint64_t{0};
          const uint64_t stem = (entry.key & kept_mask) << 8;
          for (size_t c = c_min[dig[w_prev - 1]]; c < r_cur; ++c) {
            double added = 0.0;
            for (size_t k = 0; k < w_prev; ++k) {
              added += pair_cost[pair_off[k] +
                                 static_cast<size_t>(dig[k]) * r_cur + c];
            }
            out.push_back(FrontierEntry{stem | (uint64_t(c) + 1),
                                        entry.cost + added, dropped});
          }
        }
      }
    });

    size_t total = 0;
    for (const auto& chunk : produced) total += chunk.size();
    std::vector<FrontierEntry> generation;
    generation.reserve(total);
    for (const auto& chunk : produced) {
      generation.insert(generation.end(), chunk.begin(), chunk.end());
    }
    SortAndMinMergeFrontier(&generation);
    BFLY_CHECK_MSG(!generation.empty(),
                   "sparse bias DP lost every state (zero bias is always "
                   "feasible, so this is a bug)");
    steps[i] = std::move(generation);
  }

  // Cheapest final state; the frontier is key-sorted, so the first strict
  // minimum is also the lexicographically smallest — the reference's
  // tie-break.
  const FrontierEntry* best = &steps[n - 1][0];
  for (const FrontierEntry& entry : steps[n - 1]) {
    if (entry.cost < best->cost) best = &entry;
  }

  std::vector<uint8_t> choice(n, 0);
  uint64_t key = best->key;
  {
    const size_t w = std::min(n, gamma);
    uint64_t k = key;
    for (size_t idx = n; idx-- > n - w;) {
      choice[idx] = static_cast<uint8_t>((k & 0xff) - 1);
      k >>= 8;
    }
    for (size_t i = n - 1; i >= gamma; --i) {
      const std::vector<FrontierEntry>& frontier = steps[i];
      const auto it = std::lower_bound(
          frontier.begin(), frontier.end(), key,
          [](const FrontierEntry& e, uint64_t k2) { return e.key < k2; });
      BFLY_CHECK_MSG(it != frontier.end() && it->key == key,
                     "sparse bias DP backtrack lost its parent state");
      choice[i - gamma] = it->dropped;
      // Parent key: prepend the dropped digit, remove the entering one.
      key = (uint64_t(it->dropped) + 1) << (8 * (gamma - 1)) | (key >> 8);
    }
  }

  std::vector<double> biases(n);
  for (size_t i = 0; i < n; ++i) {
    biases[i] = static_cast<double>(grids[i][choice[i]]);
    BFLY_DCHECK_MSG(
        i == 0 || static_cast<double>(fecs[i - 1].support) + biases[i - 1] <
                      static_cast<double>(fecs[i].support) + biases[i],
        "order-preserving sparse DP produced a non-monotone estimator");
  }
  return biases;
}

std::vector<double> RatioPreservingBiases(const std::vector<FecProfile>& fecs) {
  const size_t n = fecs.size();
  std::vector<double> biases(n, 0.0);
  if (n == 0) return biases;
  double t1 = static_cast<double>(fecs[0].support);
  double beta1 = fecs[0].max_bias;
  for (size_t i = 0; i < n; ++i) {
    double proportional = beta1 * static_cast<double>(fecs[i].support) / t1;
    biases[i] = std::min(proportional, fecs[i].max_bias);
  }
  return biases;
}

std::vector<double> HybridBiases(const std::vector<FecProfile>& fecs,
                                 const std::vector<double>& order_biases,
                                 const std::vector<double>& ratio_biases,
                                 double lambda) {
  assert(fecs.size() == order_biases.size());
  assert(fecs.size() == ratio_biases.size());
  std::vector<double> biases(fecs.size());
  for (size_t i = 0; i < fecs.size(); ++i) {
    double blended =
        lambda * order_biases[i] + (1.0 - lambda) * ratio_biases[i];
    biases[i] = std::clamp(blended, -fecs[i].max_bias, fecs[i].max_bias);
  }
  return biases;
}

}  // namespace butterfly
