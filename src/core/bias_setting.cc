#include "core/bias_setting.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace butterfly {

std::vector<double> ZeroBiases(size_t n) { return std::vector<double>(n, 0.0); }

namespace {

// Integer bias candidates for one FEC: a symmetric grid over [−βᵐ, βᵐ] with
// at most `max_candidates` points, always containing 0 (so the zero-bias
// configuration — feasible because supports are strictly increasing — is
// always reachable).
std::vector<int64_t> BiasGrid(double max_bias, size_t max_candidates) {
  int64_t bound = static_cast<int64_t>(std::floor(max_bias));
  if (bound <= 0 || max_candidates <= 1) return {0};
  size_t span = static_cast<size_t>(2 * bound + 1);
  size_t points = std::min(max_candidates | 1u, span);  // odd => includes 0
  std::vector<int64_t> grid;
  grid.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points - 1);
    grid.push_back(
        static_cast<int64_t>(std::llround(-bound + frac * 2.0 * bound)));
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

// Pairwise inversion-risk cost (the objective of Algorithm 1): zero once the
// uncertainty regions are separated by at least α + 1.
double PairCost(const FecProfile& a, const FecProfile& b, int64_t distance,
                int64_t alpha) {
  if (distance >= alpha + 1) return 0.0;
  double gap = static_cast<double>(alpha + 1 - distance);
  return static_cast<double>(a.member_count + b.member_count) * gap * gap;
}

// Packs up to 8 candidate indices (each < 256) into a state key.
uint64_t PackKey(const std::vector<uint8_t>& window) {
  uint64_t key = 0;
  for (uint8_t idx : window) key = (key << 8) | (uint64_t(idx) + 1);
  return key;
}

struct DpEntry {
  double cost = std::numeric_limits<double>::infinity();
  uint8_t dropped = 0xff;  // candidate index of the FEC that left the window
};

}  // namespace

std::vector<double> OrderPreservingBiases(const std::vector<FecProfile>& fecs,
                                          int64_t alpha,
                                          const OrderOptConfig& opt) {
  const size_t n = fecs.size();
  if (n == 0) return {};
  const size_t gamma = std::min<size_t>(opt.gamma, 8);
  if (gamma == 0 || n == 1) return ZeroBiases(n);

  // Derive the per-FEC grid size from the state budget: the DP window holds
  // γ FECs, so grids of size G yield at most G^γ states.
  size_t grid_cap = opt.max_candidates;
  if (gamma > 1) {
    double budget = std::pow(static_cast<double>(opt.max_states),
                             1.0 / static_cast<double>(gamma));
    grid_cap = std::min<size_t>(
        grid_cap, std::max<size_t>(3, static_cast<size_t>(budget)));
  }

  std::vector<std::vector<int64_t>> grids(n);
  for (size_t i = 0; i < n; ++i) {
    grids[i] = BiasGrid(fecs[i].max_bias, grid_cap);
    assert(grids[i].size() <= 255);
  }

  // steps[i]: state (packed candidate indices of FECs [i-γ+1 .. i], or fewer
  // while the window fills) -> best cost and the dropped index for backtrack.
  std::vector<std::unordered_map<uint64_t, DpEntry>> steps(n);

  // Initialize with FEC 0 alone in the window.
  for (uint8_t c = 0; c < grids[0].size(); ++c) {
    steps[0][PackKey({c})] = DpEntry{0.0, 0xff};
  }

  std::vector<uint8_t> window;
  for (size_t i = 1; i < n; ++i) {
    const size_t prev_window_len = std::min(i, gamma);
    const bool drops = prev_window_len == gamma;
    for (const auto& [prev_key, prev_entry] : steps[i - 1]) {
      // Unpack the previous window (candidate indices of FECs
      // [i-prev_window_len .. i-1]).
      window.assign(prev_window_len, 0);
      uint64_t key = prev_key;
      for (size_t k = prev_window_len; k-- > 0;) {
        window[k] = static_cast<uint8_t>((key & 0xff) - 1);
        key >>= 8;
      }

      const size_t first_fec = i - prev_window_len;
      const int64_t prev_estimator =
          fecs[i - 1].support + grids[i - 1][window.back()];

      for (uint8_t c = 0; c < grids[i].size(); ++c) {
        const int64_t estimator = fecs[i].support + grids[i][c];
        if (estimator <= prev_estimator) continue;  // e_{i-1} < e_i required

        double added = 0.0;
        for (size_t k = 0; k < prev_window_len; ++k) {
          size_t j = first_fec + k;
          int64_t ej = fecs[j].support + grids[j][window[k]];
          added += PairCost(fecs[j], fecs[i], estimator - ej, alpha);
        }

        // Build the new window key: drop the oldest if the window is full.
        uint64_t new_key = 0;
        size_t start = drops ? 1 : 0;
        for (size_t k = start; k < prev_window_len; ++k) {
          new_key = (new_key << 8) | (uint64_t(window[k]) + 1);
        }
        new_key = (new_key << 8) | (uint64_t(c) + 1);

        DpEntry& slot = steps[i][new_key];
        double total = prev_entry.cost + added;
        if (total < slot.cost) {
          slot.cost = total;
          slot.dropped = drops ? window[0] : 0xff;
        }
      }
    }
    assert(!steps[i].empty());
  }

  // Pick the cheapest final state and backtrack.
  uint64_t best_key = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& [key, entry] : steps[n - 1]) {
    if (entry.cost < best_cost) {
      best_cost = entry.cost;
      best_key = key;
    }
  }

  std::vector<uint8_t> choice(n, 0);
  uint64_t key = best_key;
  {
    // The final window covers FECs [n - w .. n-1].
    size_t w = std::min(n, gamma);
    uint64_t k = key;
    for (size_t idx = n; idx-- > n - w;) {
      choice[idx] = static_cast<uint8_t>((k & 0xff) - 1);
      k >>= 8;
    }
    // Walk back: at step i the stored `dropped` is the choice of FEC i - γ.
    for (size_t i = n - 1; i >= gamma; --i) {
      const DpEntry& entry = steps[i].at(key);
      choice[i - gamma] = entry.dropped;
      // Parent key: prepend dropped, remove last.
      uint64_t parent = 0;
      size_t parent_len = std::min(i, gamma);
      // Current window indices are FECs [i-γ+1 .. i]; parent window is
      // [i-parent_len .. i-1] = dropped ++ current[0..γ-2].
      std::vector<uint8_t> cur(gamma);
      uint64_t kk = key;
      for (size_t k2 = gamma; k2-- > 0;) {
        cur[k2] = static_cast<uint8_t>((kk & 0xff) - 1);
        kk >>= 8;
      }
      std::vector<uint8_t> parent_window;
      if (parent_len == gamma) parent_window.push_back(entry.dropped);
      for (size_t k2 = 0; k2 + 1 < gamma; ++k2) parent_window.push_back(cur[k2]);
      for (uint8_t idx : parent_window) parent = (parent << 8) | (uint64_t(idx) + 1);
      key = parent;
    }
  }

  std::vector<double> biases(n);
  for (size_t i = 0; i < n; ++i) {
    biases[i] = static_cast<double>(grids[i][choice[i]]);
  }
  return biases;
}

std::vector<double> RatioPreservingBiases(const std::vector<FecProfile>& fecs) {
  const size_t n = fecs.size();
  std::vector<double> biases(n, 0.0);
  if (n == 0) return biases;
  double t1 = static_cast<double>(fecs[0].support);
  double beta1 = fecs[0].max_bias;
  for (size_t i = 0; i < n; ++i) {
    double proportional = beta1 * static_cast<double>(fecs[i].support) / t1;
    biases[i] = std::min(proportional, fecs[i].max_bias);
  }
  return biases;
}

std::vector<double> HybridBiases(const std::vector<FecProfile>& fecs,
                                 const std::vector<double>& order_biases,
                                 const std::vector<double>& ratio_biases,
                                 double lambda) {
  assert(fecs.size() == order_biases.size());
  assert(fecs.size() == ratio_biases.size());
  std::vector<double> biases(fecs.size());
  for (size_t i = 0; i < fecs.size(); ++i) {
    double blended =
        lambda * order_biases[i] + (1.0 - lambda) * ratio_biases[i];
    biases[i] = std::clamp(blended, -fecs[i].max_bias, fecs[i].max_bias);
  }
  return biases;
}

}  // namespace butterfly
