/// \file sanitized_output.h
/// \brief The sanitized release: what Butterfly publishes instead of the raw
/// mining output.

#ifndef BUTTERFLY_CORE_SANITIZED_OUTPUT_H_
#define BUTTERFLY_CORE_SANITIZED_OUTPUT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/itemset.h"
#include "common/types.h"
#include "inference/inclusion_exclusion.h"

namespace butterfly {

/// One released itemset. Only `itemset` and `sanitized_support` are visible
/// to consumers; `bias` and `variance` are scheme metadata carried along for
/// utility/privacy accounting (a Kerckhoffs adversary may know them too —
/// the privacy guarantee rests on the noise variance, not on secrecy).
struct SanitizedItemset {
  Itemset itemset;
  Support sanitized_support = 0;
  double bias = 0;
  double variance = 0;

  bool operator==(const SanitizedItemset& other) const = default;
};

/// A sealed sanitized release for one window.
class SanitizedOutput {
 public:
  SanitizedOutput() = default;
  SanitizedOutput(Support min_support, Support window_size)
      : min_support_(min_support), window_size_(window_size) {}

  void Add(SanitizedItemset item);
  void Seal();

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  Support min_support() const { return min_support_; }
  Support window_size() const { return window_size_; }

  const std::vector<SanitizedItemset>& items() const { return items_; }

  /// The released (sanitized) support of \p itemset, if released.
  std::optional<Support> SanitizedSupportOf(const Itemset& itemset) const;

  const SanitizedItemset* Find(const Itemset& itemset) const;

  /// The adversary's bias-corrected view: E[T(X) | release] = T̃(X) − β(X)
  /// for released X; the window size for the empty itemset. This is the
  /// provider to plug into DerivePatternEstimate when measuring prig.
  RealSupportProvider AsEstimatorProvider() const;

  std::string ToString() const;

 private:
  Support min_support_ = 0;
  Support window_size_ = 0;
  bool sealed_ = false;  ///< Seal() sorted items_, enabling binary search
  std::vector<SanitizedItemset> items_;
};

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_SANITIZED_OUTPUT_H_
