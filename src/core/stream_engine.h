/// \file stream_engine.h
/// \brief StreamPrivacyEngine: the end-to-end pipeline of the paper —
/// Moment mining over a sliding window with Butterfly sanitization on top.
/// This is the primary public entry point for applications.
///
/// The release surface is one call: Release() returns a ReleaseResult
/// bundling the sanitized output with an EngineStats snapshot (per-stage
/// nanoseconds, cache-hit flags, the release epoch), so callers no longer
/// juggle the engine's timing accumulator and the sanitizer's stage times
/// as two objects. The engine also checkpoints: Checkpoint/Restore (and the
/// file-level wrappers in persist/engine_checkpoint.h) capture every piece
/// of state a bit-identical resume needs.

#ifndef BUTTERFLY_CORE_STREAM_ENGINE_H_
#define BUTTERFLY_CORE_STREAM_ENGINE_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "core/butterfly.h"
#include "metrics/timing.h"
#include "moment/moment.h"

namespace butterfly {

namespace persist {
class CheckpointWriter;
class CheckpointReader;
}  // namespace persist

/// Per-release pipeline statistics, snapshotted by Release(). Replaces the
/// old mine_ns()/TakeMineNs() + ButterflyEngine::last_stage_times() pair.
struct EngineStats {
  double mine_ns = 0;       ///< miner maintenance since the previous release
  double partition_ns = 0;  ///< FEC sync + profile construction
  double bias_ns = 0;       ///< bias reuse/memo lookup + DP on a miss
  double noise_ns = 0;      ///< per-itemset perturbation (parallel phase)
  double emit_ns = 0;       ///< republish pinning + release assembly + seal

  bool bias_cache_hit = false;  ///< previous-window bias reuse fired
  bool bias_memo_hit = false;   ///< cross-window DP memo fired

  uint64_t epoch = 0;            ///< the epoch this release was drawn under
  size_t frequent_itemsets = 0;  ///< size of the raw mined output
  size_t fec_count = 0;          ///< frequency equivalence classes released
};

/// What one Release() returns: the sanitized output plus its statistics.
struct ReleaseResult {
  SanitizedOutput output;
  EngineStats stats;
};

class StreamPrivacyEngine {
 public:
  /// \param window_capacity sliding-window size H.
  /// \param config Butterfly configuration (carries C and K). Validated by
  ///        Create; the ctor asserts.
  static Result<StreamPrivacyEngine> Create(size_t window_capacity,
                                            const ButterflyConfig& config);

  StreamPrivacyEngine(size_t window_capacity, const ButterflyConfig& config)
      : miner_(window_capacity, config.min_support), sanitizer_(config) {}

  StreamPrivacyEngine(StreamPrivacyEngine&&) = default;

  /// Feeds the next stream record. Time spent in the miner's incremental
  /// maintenance accumulates into the next Release()'s stats.mine_ns.
  void Append(Transaction t) {
    Stopwatch watch;
    miner_.Append(std::move(t));
    mine_ns_ += watch.Seconds() * 1e9;
  }

  /// True once the window holds H records.
  bool WindowFull() const { return miner_.window().Full(); }

  /// The raw (unprotected) full frequent-itemset output — what a mining
  /// system without output-privacy protection would publish.
  ///
  /// Freshness: served from the miner's incremental expansion cache, which
  /// is revalidated on this call, so the content always reflects every
  /// Append made so far (identical to expanding the closed lattice from
  /// scratch). The returned reference is invalidated by the next Append(),
  /// Release(), RawOutput() or Restore() — copy it to keep it.
  const MiningOutput& RawOutput() { return miner_.GetAllFrequentIncremental(); }

  /// Deprecated alias of RawOutput(), kept for source compatibility with the
  /// pre-unification API (there used to be a scratch-expanding RawOutput and
  /// an incremental variant; they now share the one implementation).
  [[deprecated("use RawOutput()")]] const MiningOutput& RawOutputIncremental() {
    return RawOutput();
  }

  /// The raw closed frequent itemsets (Moment's native output).
  MiningOutput RawClosedOutput() const { return miner_.GetClosedFrequent(); }

  /// The sanitized release for the current window, with per-stage stats.
  ///
  /// Feeds the sanitizer from the incremental expansion cache by reference —
  /// no per-release copy of the full MiningOutput is materialized — and
  /// keeps the FEC partition itself incremental: the expansion delta patches
  /// only the itemsets whose support changed since the last release, instead
  /// of re-partitioning and re-sorting every class per window. The release
  /// is bit-identical to sanitizing RawOutput() from scratch.
  ReleaseResult Release() {
    ReleaseResult result;
    result.stats.epoch = sanitizer_.epoch();
    const MiningOutput& raw = miner_.GetAllFrequentIncremental();
    fec_partition_.Sync(raw, miner_.expansion_version(),
                        miner_.last_expansion_delta());
    result.output = sanitizer_.Sanitize(
        raw, static_cast<Support>(miner_.window().size()),
        &fec_partition_.view());
    const SanitizeStageTimes& stages = sanitizer_.last_stage_times();
    result.stats.mine_ns = mine_ns_;
    mine_ns_ = 0;
    result.stats.partition_ns = stages.partition_ns;
    result.stats.bias_ns = stages.bias_ns;
    result.stats.noise_ns = stages.noise_ns;
    result.stats.emit_ns = stages.emit_ns;
    result.stats.bias_cache_hit = stages.bias_cache_hit;
    result.stats.bias_memo_hit = stages.bias_memo_hit;
    result.stats.frequent_itemsets = raw.size();
    result.stats.fec_count = fec_partition_.view().size();
    return result;
  }

  /// Deprecated: nanoseconds of mining maintenance since the last release.
  /// Release() now reports this as ReleaseResult::stats.mine_ns.
  [[deprecated("read ReleaseResult::stats.mine_ns")]] double mine_ns() const {
    return mine_ns_;
  }

  /// Deprecated: returns mine_ns() and resets the accumulator. Release()
  /// drains the accumulator itself now.
  [[deprecated("read ReleaseResult::stats.mine_ns")]] double TakeMineNs() {
    double ns = mine_ns_;
    mine_ns_ = 0;
    return ns;
  }

  const MomentMiner& miner() const { return miner_; }
  ButterflyEngine& sanitizer() { return sanitizer_; }
  const ButterflyConfig& config() const { return sanitizer_.config(); }
  /// The incrementally maintained FEC partition of the release path.
  const FecPartitioner& fec_partition() const { return fec_partition_; }

  /// Serializes the full engine: window capacity + config header, then the
  /// miner (window, bitmap index, CET arena) and the sanitizer (epoch,
  /// republish cache, previous-window bias settings). The FEC partition and
  /// the miner's expansion cache are reconstructible and are not written —
  /// the first post-restore Release rebuilds both with identical content.
  /// See persist/engine_checkpoint.h for the file-level wrappers.
  void Checkpoint(persist::CheckpointWriter* writer) const;

  /// Restores this engine from a checkpoint whose window capacity and config
  /// exactly match this engine's (bit-compared; returns kInvalidArgument
  /// otherwise). After a successful restore the engine emits byte-identical
  /// releases to the uninterrupted run it was checkpointed from.
  Status Restore(persist::CheckpointReader* reader);

  /// Builds an engine directly from a checkpoint payload — the capacity and
  /// config are read from the snapshot itself (and re-validated), so the
  /// caller needs nothing but the file.
  static Result<StreamPrivacyEngine> FromCheckpoint(
      persist::CheckpointReader* reader);

 private:
  /// Restores the component sections that follow the capacity+config header.
  Status RestoreBody(persist::CheckpointReader* reader);

  MomentMiner miner_;
  ButterflyEngine sanitizer_;
  FecPartitioner fec_partition_;
  double mine_ns_ = 0;
};

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_STREAM_ENGINE_H_
