/// \file stream_engine.h
/// \brief StreamPrivacyEngine: the end-to-end pipeline of the paper —
/// Moment mining over a sliding window with Butterfly sanitization on top.
/// This is the primary public entry point for applications.
///
/// The release surface is one call: Release() returns a ReleaseResult
/// bundling the sanitized output with an EngineStats snapshot (per-stage
/// nanoseconds, cache-hit flags, the release epoch), so callers no longer
/// juggle the engine's timing accumulator and the sanitizer's stage times
/// as two objects. The engine also checkpoints: Checkpoint/Restore (and the
/// file-level wrappers in persist/engine_checkpoint.h) capture every piece
/// of state a bit-identical resume needs.
///
/// With SetPipelined(true) the engine overlaps windows: ReleaseAsync()
/// snapshots the mining output into a FEC partition on the caller's thread,
/// then runs the sanitize/emit stage on the shared pool while the caller
/// keeps Append()ing window W+1 into the miner. Releases remain byte
/// identical to serial mode at every thread count (the sanitizer's noise is
/// counter-keyed, not order-keyed), so pipelining is pure scheduling.

#ifndef BUTTERFLY_CORE_STREAM_ENGINE_H_
#define BUTTERFLY_CORE_STREAM_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/butterfly.h"
#include "metrics/timing.h"
#include "moment/moment.h"
#include "policy/release_policy.h"

namespace butterfly {

namespace persist {
class CheckpointWriter;
class CheckpointReader;
}  // namespace persist

/// Per-release pipeline statistics, snapshotted by Release().
struct EngineStats {
  double mine_ns = 0;       ///< miner maintenance since the previous release
  double partition_ns = 0;  ///< FEC sync + profile construction
  double bias_ns = 0;       ///< bias reuse/memo lookup + DP on a miss
  double noise_ns = 0;      ///< per-itemset perturbation (parallel phase)
  double emit_ns = 0;       ///< republish pinning + release assembly + seal

  bool bias_cache_hit = false;  ///< previous-window bias reuse fired
  bool bias_memo_hit = false;   ///< cross-window DP memo fired

  /// Cumulative sanitizer DP-memo traffic up to and including this release
  /// (misses count only windows that actually ran the optimizer). Exposed
  /// here so the overhead benchmarks can emit memo hit rates per row.
  uint64_t bias_memo_hits = 0;
  uint64_t bias_memo_misses = 0;

  /// Differential-privacy accounting, filled by the DP release policies
  /// (zero under the Butterfly backend, whose guarantee is the paper's
  /// (epsilon, delta) interval model, not DP). See PolicyStats.
  double epsilon_spent = 0;
  double epsilon_cumulative = 0;

  uint64_t epoch = 0;            ///< the epoch this release was drawn under
  size_t frequent_itemsets = 0;  ///< size of the raw mined output
  size_t fec_count = 0;          ///< frequency equivalence classes released

  /// Window-index memory accounting at release time (see IndexMemoryStats):
  /// payload bytes of the live rows, the dense-bitmap-equivalent bytes of
  /// the same rows, and the live-row histogram by container representation.
  size_t index_bytes = 0;
  size_t index_dense_equivalent_bytes = 0;
  size_t index_array_rows = 0;
  size_t index_bitmap_rows = 0;
  size_t index_run_rows = 0;
  size_t index_pinned_rows = 0;
};

/// What one Release() returns: the sanitized output plus its statistics.
struct ReleaseResult {
  SanitizedOutput output;
  EngineStats stats;
};

/// Copies a window index's IndexMemoryStats into the index_* stat fields.
void FillIndexMemoryStats(const WindowBitmapIndex& index, EngineStats* stats);

class StreamPrivacyEngine {
 public:
  /// \param window_capacity sliding-window size H.
  /// \param config Butterfly configuration (carries C and K). Validated by
  ///        Create; the ctor asserts.
  static Result<StreamPrivacyEngine> Create(size_t window_capacity,
                                            const ButterflyConfig& config);

  StreamPrivacyEngine(size_t window_capacity, const ButterflyConfig& config)
      : miner_(window_capacity, config.min_support,
               config.hybrid_index ? IndexRowStore::kHybrid
                                   : IndexRowStore::kDense),
        config_(config),
        policy_(MakeReleasePolicy(config)) {}

  /// Movable; an in-flight pipelined release is joined first, because its
  /// pool task holds a pointer into the source engine.
  StreamPrivacyEngine(StreamPrivacyEngine&& other)
      : miner_((other.JoinInflight(), std::move(other.miner_))),
        config_(other.config_),
        policy_(std::move(other.policy_)),
        partitions_{std::move(other.partitions_[0]),
                    std::move(other.partitions_[1])},
        active_partition_(other.active_partition_),
        mine_ns_(other.mine_ns_),
        pipelined_(other.pipelined_),
        pipeline_pool_(other.pipeline_pool_),
        pending_delta_(std::move(other.pending_delta_)),
        pending_version_(other.pending_version_),
        has_pending_delta_(other.has_pending_delta_) {}

  ~StreamPrivacyEngine() { JoinInflight(); }

  /// Feeds the next stream record. Time spent in the miner's incremental
  /// maintenance accumulates into the next Release()'s stats.mine_ns.
  void Append(Transaction t) {
    Stopwatch watch;
    miner_.Append(std::move(t));
    mine_ns_ += watch.Seconds() * 1e9;
  }

  /// True once the window holds H records.
  bool WindowFull() const { return miner_.window().Full(); }

  /// The raw (unprotected) full frequent-itemset output — what a mining
  /// system without output-privacy protection would publish.
  ///
  /// Freshness: served from the miner's incremental expansion cache, which
  /// is revalidated on this call, so the content always reflects every
  /// Append made so far (identical to expanding the closed lattice from
  /// scratch). The returned reference is invalidated by the next Append(),
  /// Release(), RawOutput() or Restore() — copy it to keep it.
  const MiningOutput& RawOutput() { return miner_.GetAllFrequentIncremental(); }

  /// The raw closed frequent itemsets (Moment's native output).
  MiningOutput RawClosedOutput() const { return miner_.GetClosedFrequent(); }

  /// The sanitized release for the current window, with per-stage stats.
  ///
  /// Routes through the configured ReleasePolicy. The policy is fed from the
  /// incremental expansion cache by reference — no per-release copy of the
  /// full MiningOutput is materialized — and the FEC partition it receives
  /// is itself incremental: the expansion delta patches only the itemsets
  /// whose support changed since the last release, instead of
  /// re-partitioning and re-sorting every class per window. The release is
  /// bit-identical to sanitizing RawOutput() from scratch.
  ///
  /// In pipelined mode this is ReleaseAsync() + Wait(): correct, but with no
  /// overlap — call ReleaseAsync() and keep appending to overlap windows.
  ReleaseResult Release();

  /// Handle to one in-flight pipelined release. Wait() blocks until the
  /// sanitize/emit stage finishes and moves the result out (valid once).
  /// Tickets outlive the next ReleaseAsync() call — each flight owns its
  /// result — so a caller may hold several and drain them at the end.
  class ReleaseTicket {
   public:
    ReleaseTicket() = default;
    bool valid() const { return flight_ != nullptr; }
    ReleaseResult Wait();

   private:
    friend class StreamPrivacyEngine;
    struct Flight {
      Mutex mu;
      CondVar cv;
      bool done BFLY_GUARDED_BY(mu) = false;
      /// Deliberately not GUARDED_BY(mu): the worker writes it before
      /// setting `done` under the lock, and readers move it only after
      /// observing `done` — the lock acquisition publishes the write
      /// (message-passing handoff, single producer, single consumer).
      ReleaseResult result;
    };
    explicit ReleaseTicket(std::shared_ptr<Flight> flight)
        : flight_(std::move(flight)) {}
    std::shared_ptr<Flight> flight_;
  };

  /// Starts a release of the current window and returns without waiting for
  /// the sanitize/emit stage, which runs on the shared pool while the caller
  /// keeps Append()ing the next window. The caller-side part snapshots
  /// everything the background stage reads: the mining output is synced into
  /// the idle one of two alternating FEC partitions (double-buffered, so the
  /// handoff copies nothing and never touches the partition a still-running
  /// flight reads), and the previous flight is joined before the sanitizer —
  /// exclusive by design — is handed the new one. At most one flight is in
  /// flight; the released bytes are identical to serial Release() at any
  /// thread count. Without SetPipelined(true) (or with threads <= 1) this
  /// degrades to a synchronous Release() wrapped in a completed ticket — as
  /// does a call made from a pool worker thread (e.g. an EngineFleet release
  /// batch), where submitting a dependent task and blocking on it could
  /// deadlock a fully-subscribed pool.
  ReleaseTicket ReleaseAsync();

  /// Toggles cross-window pipelining (off by default). Purely a scheduling
  /// mode — released bytes never change — so it is deliberately not a
  /// ButterflyConfig field and does not enter checkpoints. Uses the shared
  /// pool for config().threads; with threads <= 1 there is no pool and the
  /// engine stays effectively serial. Disabling joins any in-flight release.
  void SetPipelined(bool on);
  bool pipelined() const { return pipelined_; }

  /// True while a pipelined release is still running on the pool.
  bool ReleaseInFlight() const;

  const MomentMiner& miner() const { return miner_; }

  /// The configured release backend.
  const ReleasePolicy& release_policy() const { return *policy_; }

  /// The epoch the next release will be drawn under (= releases emitted so
  /// far under this policy). Works for every backend — use this instead of
  /// sanitizer().epoch().
  uint64_t release_epoch() const { return policy_->epoch(); }

  /// The wrapped ButterflyEngine, for Butterfly-specific consumers (noise
  /// envelopes for the interval attack, bias audits). Checks that the
  /// configured policy is in fact Butterfly — call only when
  /// config().policy == ReleasePolicyKind::kButterfly.
  ButterflyEngine& sanitizer();
  const ButterflyEngine& sanitizer() const;

  const ButterflyConfig& config() const { return config_; }
  /// The incrementally maintained FEC partition of the most recent release
  /// (in pipelined mode, the active one of the two alternating buffers).
  const FecPartitioner& fec_partition() const {
    return partitions_[active_partition_];
  }

  /// Serializes the full engine: window capacity + config header (which
  /// carries the policy identity and knobs), then the miner (window, bitmap
  /// index, CET arena) and the release policy's own section (for Butterfly:
  /// epoch, republish cache, previous-window bias settings; for the DP
  /// backends: epoch and cumulative budget). The FEC partition and
  /// the miner's expansion cache are reconstructible and are not written —
  /// the first post-restore Release rebuilds both with identical content.
  /// Requires no in-flight pipelined release (checked): Wait() first.
  /// See persist/engine_checkpoint.h for the file-level wrappers.
  void Checkpoint(persist::CheckpointWriter* writer) const;

  /// Restores this engine from a checkpoint whose window capacity and config
  /// exactly match this engine's (bit-compared; returns kInvalidArgument
  /// otherwise). After a successful restore the engine emits byte-identical
  /// releases to the uninterrupted run it was checkpointed from.
  Status Restore(persist::CheckpointReader* reader);

  /// Builds an engine directly from a checkpoint payload — the capacity and
  /// config are read from the snapshot itself (and re-validated), so the
  /// caller needs nothing but the file.
  static Result<StreamPrivacyEngine> FromCheckpoint(
      persist::CheckpointReader* reader);

 private:
  /// Restores the component sections that follow the capacity+config header.
  Status RestoreBody(persist::CheckpointReader* reader);

  /// Blocks until the in-flight pipelined release (if any) finishes. The
  /// flight's result stays retrievable through its ticket.
  void JoinInflight();

  /// Builds the WindowContext for the current window (size, absolute stream
  /// position, and the given partition's view).
  WindowContext MakeWindowContext(const FecPartitioner& part) const;

  MomentMiner miner_;
  ButterflyConfig config_;
  std::unique_ptr<ReleasePolicy> policy_;
  /// Release-path FEC partitions. Serial mode only ever uses slot 0;
  /// pipelined mode alternates so the caller syncs one buffer while the
  /// in-flight sanitize stage reads the other. The idle buffer is two
  /// releases stale, so ReleaseAsync replays the saved previous delta
  /// (pending_delta_) before syncing the current one — both patches apply
  /// incrementally and the buffers never need copying or rebuilding.
  FecPartitioner partitions_[2];
  size_t active_partition_ = 0;
  double mine_ns_ = 0;

  bool pipelined_ = false;
  ThreadPool* pipeline_pool_ = nullptr;  ///< shared, not owned; see SetPipelined
  std::shared_ptr<ReleaseTicket::Flight> inflight_;
  MiningOutputDelta pending_delta_;  ///< previous release's expansion delta
  uint64_t pending_version_ = 0;
  bool has_pending_delta_ = false;
};

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_STREAM_ENGINE_H_
