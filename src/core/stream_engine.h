/// \file stream_engine.h
/// \brief StreamPrivacyEngine: the end-to-end pipeline of the paper —
/// Moment mining over a sliding window with Butterfly sanitization on top.
/// This is the primary public entry point for applications.

#ifndef BUTTERFLY_CORE_STREAM_ENGINE_H_
#define BUTTERFLY_CORE_STREAM_ENGINE_H_

#include <cstddef>

#include "common/status.h"
#include "core/butterfly.h"
#include "metrics/timing.h"
#include "moment/moment.h"

namespace butterfly {

class StreamPrivacyEngine {
 public:
  /// \param window_capacity sliding-window size H.
  /// \param config Butterfly configuration (carries C and K). Validated by
  ///        Create; the ctor asserts.
  static Result<StreamPrivacyEngine> Create(size_t window_capacity,
                                            const ButterflyConfig& config);

  StreamPrivacyEngine(size_t window_capacity, const ButterflyConfig& config)
      : miner_(window_capacity, config.min_support), sanitizer_(config) {}

  StreamPrivacyEngine(StreamPrivacyEngine&&) = default;

  /// Feeds the next stream record. Time spent in the miner's incremental
  /// maintenance accumulates into mine_ns() — the mine stage of the
  /// pipeline's per-stage accounting (the sanitize stages live in
  /// SanitizeStageTimes on the sanitizer).
  void Append(Transaction t) {
    Stopwatch watch;
    miner_.Append(std::move(t));
    mine_ns_ += watch.Seconds() * 1e9;
  }

  /// True once the window holds H records.
  bool WindowFull() const { return miner_.window().Full(); }

  /// The raw (unprotected) full frequent-itemset output — what a mining
  /// system without output-privacy protection would publish. Expands the
  /// closed lattice from scratch; prefer RawOutputIncremental on the release
  /// hot path.
  MiningOutput RawOutput() const { return miner_.GetAllFrequent(); }

  /// The raw full output, served from the miner's incremental expansion
  /// cache (identical content to RawOutput). The reference stays valid until
  /// the next Append or Release-path call.
  const MiningOutput& RawOutputIncremental() {
    return miner_.GetAllFrequentIncremental();
  }

  /// The raw closed frequent itemsets (Moment's native output).
  MiningOutput RawClosedOutput() const { return miner_.GetClosedFrequent(); }

  /// The sanitized release for the current window. Feeds the sanitizer from
  /// the incremental expansion cache by reference — no per-release copy of
  /// the full MiningOutput is materialized — and keeps the FEC partition
  /// itself incremental: the expansion delta patches only the itemsets whose
  /// support changed since the last release, instead of re-partitioning and
  /// re-sorting every class per window. The release is bit-identical to
  /// sanitizing RawOutput() from scratch.
  SanitizedOutput Release() {
    const MiningOutput& raw = miner_.GetAllFrequentIncremental();
    fec_partition_.Sync(raw, miner_.expansion_version(),
                        miner_.last_expansion_delta());
    return sanitizer_.Sanitize(raw,
                               static_cast<Support>(miner_.window().size()),
                               fec_partition_.view());
  }

  /// Nanoseconds spent inside mining maintenance since the last TakeMineNs()
  /// (the `mine_ns` stage reported by the overhead benchmarks).
  double mine_ns() const { return mine_ns_; }

  /// Returns mine_ns() and resets the accumulator, so callers can attribute
  /// mining time per reported window.
  double TakeMineNs() {
    double ns = mine_ns_;
    mine_ns_ = 0;
    return ns;
  }

  const MomentMiner& miner() const { return miner_; }
  ButterflyEngine& sanitizer() { return sanitizer_; }
  const ButterflyConfig& config() const { return sanitizer_.config(); }
  /// The incrementally maintained FEC partition of the release path.
  const FecPartitioner& fec_partition() const { return fec_partition_; }

 private:
  MomentMiner miner_;
  ButterflyEngine sanitizer_;
  FecPartitioner fec_partition_;
  double mine_ns_ = 0;
};

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_STREAM_ENGINE_H_
