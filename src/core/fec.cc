#include "core/fec.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace butterfly {

std::vector<Fec> PartitionIntoFecs(const MiningOutput& output) {
  std::map<Support, Fec> by_support;
  for (const FrequentItemset& f : output.itemsets()) {
    Fec& fec = by_support[f.support];
    fec.support = f.support;
    fec.members.push_back(f.itemset);
  }
  std::vector<Fec> fecs;
  fecs.reserve(by_support.size());
  for (auto& [support, fec] : by_support) {
    // Keep members deterministically ordered (MiningOutput is sealed, but
    // guard against unsealed inputs).
    std::sort(fec.members.begin(), fec.members.end());
    fecs.push_back(std::move(fec));
  }
  return fecs;
}

double MaxAdjustableBias(Support support, double epsilon,
                         double noise_variance) {
  double t = static_cast<double>(support);
  double budget = epsilon * t * t - noise_variance;
  return budget > 0 ? std::sqrt(budget) : 0.0;
}

}  // namespace butterfly
