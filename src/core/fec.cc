#include "core/fec.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace butterfly {

namespace {

/// Appends \p itemset to a class's member list, keeping it sorted. Members
/// almost always arrive in ascending (sealed miner) order, so the common
/// case is a push_back guarded by an O(1) position check; out-of-order
/// arrivals fall back to a binary-searched insert.
void InsertMember(std::vector<Itemset>* members, const Itemset& itemset) {
  if (members->empty() || members->back() < itemset) {
    members->push_back(itemset);
    return;
  }
  members->insert(
      std::lower_bound(members->begin(), members->end(), itemset), itemset);
}

}  // namespace

std::vector<Fec> PartitionIntoFecs(const MiningOutput& output) {
  std::map<Support, Fec> by_support;
  for (const FrequentItemset& f : output.itemsets()) {
    Fec& fec = by_support[f.support];
    fec.support = f.support;
    // Sealed outputs walk in lexicographic order, so this is a pure
    // push_back; the position check keeps unsealed inputs correct too.
    InsertMember(&fec.members, f.itemset);
  }
  std::vector<Fec> fecs;
  fecs.reserve(by_support.size());
  for (auto& [support, fec] : by_support) {
    fecs.push_back(std::move(fec));
  }
  return fecs;
}

void FecPartitioner::Reset() {
  classes_.clear();
  view_.clear();
  view_dirty_ = false;
  synced_ = false;
  last_incremental_ = false;
  applied_version_ = 0;
  total_members_ = 0;
}

void FecPartitioner::Rebuild(const MiningOutput& out) {
  classes_.clear();
  for (const FrequentItemset& f : out.itemsets()) {
    Fec& fec = classes_[f.support];
    fec.support = f.support;
    InsertMember(&fec.members, f.itemset);
  }
  total_members_ = out.size();
  view_dirty_ = true;
}

void FecPartitioner::Insert(const Itemset& itemset, Support support) {
  auto [it, created] = classes_.try_emplace(support);
  if (created) {
    it->second.support = support;
    view_dirty_ = true;
  }
  InsertMember(&it->second.members, itemset);
  ++total_members_;
}

void FecPartitioner::Remove(const Itemset& itemset, Support support) {
  auto it = classes_.find(support);
  assert(it != classes_.end());
  if (it == classes_.end()) return;
  std::vector<Itemset>& members = it->second.members;
  auto pos = std::lower_bound(members.begin(), members.end(), itemset);
  assert(pos != members.end() && *pos == itemset);
  if (pos == members.end() || !(*pos == itemset)) return;
  members.erase(pos);
  --total_members_;
  if (members.empty()) {
    classes_.erase(it);
    view_dirty_ = true;
  }
}

void FecPartitioner::RefreshView() {
  if (!view_dirty_) return;
  view_.clear();
  view_.reserve(classes_.size());
  for (const auto& [support, fec] : classes_) view_.push_back(&fec);
  view_dirty_ = false;
}

bool FecPartitioner::ApplyDelta(uint64_t version,
                                const MiningOutputDelta& delta) {
  if (!synced_ || delta.rebuilt || version != applied_version_ + 1) {
    return false;
  }
  // Same patch order as Sync: removals first (including the old side of
  // every support change) so a member moving between classes never
  // transiently collides. No mirrored-output size assert here — the
  // producer's output for this intermediate version no longer exists.
  for (const auto& [itemset, support] : delta.removed) {
    Remove(itemset, support);
  }
  for (const MiningOutputDelta::SupportChange& c : delta.changed) {
    Remove(c.itemset, c.old_support);
  }
  for (const auto& [itemset, support] : delta.added) {
    Insert(itemset, support);
  }
  for (const MiningOutputDelta::SupportChange& c : delta.changed) {
    Insert(c.itemset, c.new_support);
  }
  applied_version_ = version;
  RefreshView();
  return true;
}

void FecPartitioner::Sync(const MiningOutput& out, uint64_t version,
                          const MiningOutputDelta& delta) {
  if (synced_ && version == applied_version_) {
    last_incremental_ = true;  // nothing to do: already at this version
    return;
  }
  const bool can_patch =
      synced_ && !delta.rebuilt && version == applied_version_ + 1;
  if (!can_patch) {
    Rebuild(out);
    last_incremental_ = false;
  } else {
    // Removals first (including the old side of every support change), so a
    // member moving between classes never transiently collides.
    for (const auto& [itemset, support] : delta.removed) {
      Remove(itemset, support);
    }
    for (const MiningOutputDelta::SupportChange& c : delta.changed) {
      Remove(c.itemset, c.old_support);
    }
    for (const auto& [itemset, support] : delta.added) {
      Insert(itemset, support);
    }
    for (const MiningOutputDelta::SupportChange& c : delta.changed) {
      Insert(c.itemset, c.new_support);
    }
    last_incremental_ = true;
    assert(total_members_ == out.size());
  }
  applied_version_ = version;
  synced_ = true;
  RefreshView();
}

double MaxAdjustableBias(Support support, double epsilon,
                         double noise_variance) {
  double t = static_cast<double>(support);
  double budget = epsilon * t * t - noise_variance;
  return budget > 0 ? std::sqrt(budget) : 0.0;
}

}  // namespace butterfly
