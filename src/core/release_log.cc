#include "core/release_log.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

namespace butterfly {

Status WriteRelease(std::ostream* out, const std::string& label,
                    const SanitizedOutput& release) {
  if (label.find_first_of(" \n") != std::string::npos) {
    return Status::InvalidArgument("release label must not contain spaces");
  }
  *out << "#release " << (label.empty() ? "-" : label) << ' '
       << release.window_size() << ' ' << release.min_support() << ' '
       << release.size() << '\n';
  for (const SanitizedItemset& item : release.items()) {
    for (size_t i = 0; i < item.itemset.size(); ++i) {
      if (i > 0) *out << ' ';
      *out << item.itemset[i];
    }
    *out << ' ' << item.sanitized_support << '\n';
  }
  *out << '\n';
  if (!*out) return Status::IOError("write failed");
  return Status::OK();
}

Result<std::vector<LoggedRelease>> ReadReleases(std::istream* in) {
  std::vector<LoggedRelease> releases;
  std::string line;
  size_t line_no = 0;
  LoggedRelease* current = nullptr;
  size_t expected_items = 0;

  auto parse_error = [&](const std::string& what) {
    std::ostringstream msg;
    msg << what << " on line " << line_no;
    return Status::InvalidArgument(msg.str());
  };

  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) {
      current = nullptr;
      continue;
    }
    if (line.rfind("#release", 0) == 0) {
      std::istringstream header(line.substr(8));
      LoggedRelease release;
      if (!(header >> release.label >> release.window_size >>
            release.min_support >> expected_items)) {
        return parse_error("malformed release header");
      }
      releases.push_back(std::move(release));
      current = &releases.back();
      continue;
    }
    if (current == nullptr) {
      return parse_error("item line outside a release block");
    }
    std::istringstream tokens(line);
    std::vector<Support> numbers;
    Support value = 0;
    while (tokens >> value) numbers.push_back(value);
    if (!tokens.eof()) return parse_error("non-numeric token");
    if (numbers.size() < 2) {
      return parse_error("item line needs at least one item and a support");
    }
    Support support = numbers.back();
    numbers.pop_back();
    std::vector<Item> items;
    items.reserve(numbers.size());
    for (Support n : numbers) {
      if (n < 0) return parse_error("negative item id");
      items.push_back(static_cast<Item>(n));
    }
    current->items.emplace_back(Itemset(std::move(items)), support);
  }

  for (const LoggedRelease& release : releases) {
    (void)release;
  }
  return releases;
}

Status AppendReleaseToFile(const std::string& path, const std::string& label,
                           const SanitizedOutput& release) {
  std::ofstream out(path, std::ios::app);
  if (!out) return Status::IOError("cannot open '" + path + "' for append");
  return WriteRelease(&out, label, release);
}

Result<std::vector<LoggedRelease>> ReadReleasesFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadReleases(&in);
}

Result<size_t> RecoverReleaseLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return size_t{0};  // no log yet: nothing to recover
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  in.close();

  // Walk whole lines, remembering the byte offset just past the last block
  // that completed (header, its declared item count, terminating blank line).
  // Anything after that offset — a torn tail from a crash mid-append, or a
  // line without its trailing newline — is cut.
  size_t good_end = 0;
  size_t complete = 0;
  size_t pos = 0;
  bool in_block = false;
  size_t items_left = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;  // unterminated final line: torn
    const std::string_view line(text.data() + pos, eol - pos);
    const size_t next = eol + 1;
    if (!in_block) {
      if (line.empty()) {
        good_end = next;  // benign separator between blocks
      } else if (line.rfind("#release", 0) == 0) {
        std::istringstream header{std::string(line.substr(8))};
        std::string label;
        Support window_size = 0, min_support = 0;
        if (!(header >> label >> window_size >> min_support >> items_left)) {
          break;  // torn header
        }
        in_block = true;
      } else {
        break;  // stray line outside a block
      }
    } else if (items_left > 0) {
      if (line.empty()) break;  // block ended short of its declared count
      --items_left;
    } else {
      if (!line.empty()) break;  // missing terminating blank line
      in_block = false;
      good_end = next;
      ++complete;
    }
    pos = next;
  }

  if (good_end < text.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, good_end, ec);
    if (ec) {
      return Status::IOError("cannot truncate torn release log '" + path +
                             "': " + ec.message());
    }
  }
  return complete;
}

}  // namespace butterfly
