#include "core/release_log.h"

#include <fstream>
#include <sstream>

namespace butterfly {

Status WriteRelease(std::ostream* out, const std::string& label,
                    const SanitizedOutput& release) {
  if (label.find_first_of(" \n") != std::string::npos) {
    return Status::InvalidArgument("release label must not contain spaces");
  }
  *out << "#release " << (label.empty() ? "-" : label) << ' '
       << release.window_size() << ' ' << release.min_support() << ' '
       << release.size() << '\n';
  for (const SanitizedItemset& item : release.items()) {
    for (size_t i = 0; i < item.itemset.size(); ++i) {
      if (i > 0) *out << ' ';
      *out << item.itemset[i];
    }
    *out << ' ' << item.sanitized_support << '\n';
  }
  *out << '\n';
  if (!*out) return Status::IOError("write failed");
  return Status::OK();
}

Result<std::vector<LoggedRelease>> ReadReleases(std::istream* in) {
  std::vector<LoggedRelease> releases;
  std::string line;
  size_t line_no = 0;
  LoggedRelease* current = nullptr;
  size_t expected_items = 0;

  auto parse_error = [&](const std::string& what) {
    std::ostringstream msg;
    msg << what << " on line " << line_no;
    return Status::InvalidArgument(msg.str());
  };

  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) {
      current = nullptr;
      continue;
    }
    if (line.rfind("#release", 0) == 0) {
      std::istringstream header(line.substr(8));
      LoggedRelease release;
      if (!(header >> release.label >> release.window_size >>
            release.min_support >> expected_items)) {
        return parse_error("malformed release header");
      }
      releases.push_back(std::move(release));
      current = &releases.back();
      continue;
    }
    if (current == nullptr) {
      return parse_error("item line outside a release block");
    }
    std::istringstream tokens(line);
    std::vector<Support> numbers;
    Support value = 0;
    while (tokens >> value) numbers.push_back(value);
    if (!tokens.eof()) return parse_error("non-numeric token");
    if (numbers.size() < 2) {
      return parse_error("item line needs at least one item and a support");
    }
    Support support = numbers.back();
    numbers.pop_back();
    std::vector<Item> items;
    items.reserve(numbers.size());
    for (Support n : numbers) {
      if (n < 0) return parse_error("negative item id");
      items.push_back(static_cast<Item>(n));
    }
    current->items.emplace_back(Itemset(std::move(items)), support);
  }

  for (const LoggedRelease& release : releases) {
    (void)release;
  }
  return releases;
}

Status AppendReleaseToFile(const std::string& path, const std::string& label,
                           const SanitizedOutput& release) {
  std::ofstream out(path, std::ios::app);
  if (!out) return Status::IOError("cannot open '" + path + "' for append");
  return WriteRelease(&out, label, release);
}

Result<std::vector<LoggedRelease>> ReadReleasesFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadReleases(&in);
}

}  // namespace butterfly
