/// \file bias_setting.h
/// \brief Per-FEC bias optimization: the order-preserving dynamic program
/// (Algorithm 1), the ratio-preserving bottom-up rule (Algorithm 2), and the
/// λ-blend hybrid (§VI-C).

#ifndef BUTTERFLY_CORE_BIAS_SETTING_H_
#define BUTTERFLY_CORE_BIAS_SETTING_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/config.h"

namespace butterfly {

class ThreadPool;

/// The inputs the optimizers need about one FEC.
struct FecProfile {
  Support support = 0;       ///< t_i
  size_t member_count = 0;   ///< s_i, weighting inversions in Algorithm 1
  double max_bias = 0;       ///< βᵐ_i from MaxAdjustableBias
};

/// All-zero biases (the basic scheme's setting).
std::vector<double> ZeroBiases(size_t n);

/// Preallocated working memory for the flat-table order-preserving DP,
/// reusable across calls so the per-release hot path performs no steady-state
/// allocation. A default-constructed scratch is valid; buffers grow on first
/// use and keep their capacity afterwards. Not thread-safe: use one scratch
/// per concurrent caller.
struct BiasDpScratch {
  std::vector<std::vector<int64_t>> grids;  ///< per-FEC bias candidates
  std::vector<std::vector<int64_t>> est;    ///< est[i][c] = t_i + grid[i][c]
  std::vector<size_t> state_count;          ///< DP states per step
  std::vector<size_t> step_offset;          ///< per-step base into `dropped`
  std::vector<double> prev_cost;            ///< flat cost table, step i−1
  std::vector<double> cur_cost;             ///< flat cost table, step i
  std::vector<uint8_t> dropped;    ///< per (step, state) backtrack digit
  std::vector<double> pair_cost;   ///< pairwise-cost tables (all steps or one)
  std::vector<size_t> pair_base;   ///< per-step base into `pair_cost`
  std::vector<uint32_t> c_min;     ///< per last-digit first feasible candidate
  std::vector<size_t> c_min_base;  ///< per-step base into `c_min`
  std::vector<uint8_t> choice;     ///< backtracked candidate per FEC
};

/// Order-preserving bias setting (Algorithm 1). FECs must be strictly
/// ascending by support. Minimizes Σ_{i<j} (s_i + s_j)(α + 1 − d_ij)² over a
/// γ-window via dynamic programming on integer bias grids, subject to
/// strictly increasing estimators e_i = t_i + β_i; α is the noise region
/// length. The grid resolution adapts to the state budget in
/// \p opt so that the table stays within max_states entries.
///
/// The DP runs over dense flat tables indexed by mixed-radix packed candidate
/// windows; \p scratch (optional) lets callers reuse the tables across
/// releases. Equal-cost ties are broken toward the lexicographically
/// smallest candidate window, so the result is deterministic and identical
/// to OrderPreservingBiasesReference.
///
/// When \p pool is non-null, large DP steps are computed by an
/// output-partitioned parallel sweep over the flat table. The decomposition
/// assigns each output slot to exactly one worker and replays the serial
/// update order within the slot, so the result (costs, tie-breaks, backtrack
/// bytes) is bit-identical at any thread count, including pool == nullptr.
std::vector<double> OrderPreservingBiases(const std::vector<FecProfile>& fecs,
                                          int64_t alpha,
                                          const OrderOptConfig& opt,
                                          BiasDpScratch* scratch = nullptr,
                                          ThreadPool* pool = nullptr);

/// Sparse generation-buffer variant of Algorithm 1, used when an extreme
/// (γ, grid) configuration would overflow the dense flat tables. Each step's
/// frontier is a sorted vector of (packed key, cost, dropped digit) entries:
/// candidate states are produced by a chunked sweep over
/// (prev-state × candidate-grid) pairs — deterministically concatenated in
/// producer-rank order — then reduced by SortAndMinMergeFrontier. Bit-identical
/// to OrderPreservingBiasesReference (pinned by the frontier equivalence
/// test); exposed for that test and for the micro-benchmarks.
std::vector<double> OrderPreservingBiasesSparse(
    const std::vector<FecProfile>& fecs, int64_t alpha,
    const OrderOptConfig& opt, ThreadPool* pool = nullptr);

/// The retained map-based reference implementation of Algorithm 1: one
/// ordered map of packed-window states per step. Bit-identical to
/// OrderPreservingBiases (the equivalence is pinned by a property test);
/// kept purely as the oracle for that test and as the micro-benchmark
/// baseline — production overflow now routes to
/// OrderPreservingBiasesSparse instead.
std::vector<double> OrderPreservingBiasesReference(
    const std::vector<FecProfile>& fecs, int64_t alpha,
    const OrderOptConfig& opt);

namespace internal {
/// Test hook: when true, the DP row kernels take the scalar path even on
/// SIMD-capable builds, letting tests pin scalar ≡ SIMD bit-for-bit. Flip
/// only while no DP call is in flight.
extern bool g_bias_kernel_force_scalar;
}  // namespace internal

/// Ratio-preserving bias setting (Algorithm 2): β_1 = βᵐ_1 and
/// β_i = β_{i-1}·t_i/t_{i-1} (so β_i ∝ t_i), clamped into [−βᵐ_i, βᵐ_i]
/// (Lemma 3 shows the clamp never binds for exact inputs).
std::vector<double> RatioPreservingBiases(const std::vector<FecProfile>& fecs);

/// Hybrid blend β = λ·β_op + (1 − λ)·β_rp, clamped to the maximum adjustable
/// bias of each FEC.
std::vector<double> HybridBiases(const std::vector<FecProfile>& fecs,
                                 const std::vector<double>& order_biases,
                                 const std::vector<double>& ratio_biases,
                                 double lambda);

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_BIAS_SETTING_H_
