/// \file bias_setting.h
/// \brief Per-FEC bias optimization: the order-preserving dynamic program
/// (Algorithm 1), the ratio-preserving bottom-up rule (Algorithm 2), and the
/// λ-blend hybrid (§VI-C).

#ifndef BUTTERFLY_CORE_BIAS_SETTING_H_
#define BUTTERFLY_CORE_BIAS_SETTING_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/config.h"

namespace butterfly {

/// The inputs the optimizers need about one FEC.
struct FecProfile {
  Support support = 0;       ///< t_i
  size_t member_count = 0;   ///< s_i, weighting inversions in Algorithm 1
  double max_bias = 0;       ///< βᵐ_i from MaxAdjustableBias
};

/// All-zero biases (the basic scheme's setting).
std::vector<double> ZeroBiases(size_t n);

/// Order-preserving bias setting (Algorithm 1). FECs must be strictly
/// ascending by support. Minimizes Σ_{i<j} (s_i + s_j)(α + 1 − d_ij)² over a
/// γ-window via dynamic programming on integer bias grids, subject to
/// strictly increasing estimators e_i = t_i + β_i; α is the noise region
/// length. The grid resolution adapts to the state budget in
/// \p opt so that the table stays within max_states entries.
std::vector<double> OrderPreservingBiases(const std::vector<FecProfile>& fecs,
                                          int64_t alpha,
                                          const OrderOptConfig& opt);

/// Ratio-preserving bias setting (Algorithm 2): β_1 = βᵐ_1 and
/// β_i = β_{i-1}·t_i/t_{i-1} (so β_i ∝ t_i), clamped into [−βᵐ_i, βᵐ_i]
/// (Lemma 3 shows the clamp never binds for exact inputs).
std::vector<double> RatioPreservingBiases(const std::vector<FecProfile>& fecs);

/// Hybrid blend β = λ·β_op + (1 − λ)·β_rp, clamped to the maximum adjustable
/// bias of each FEC.
std::vector<double> HybridBiases(const std::vector<FecProfile>& fecs,
                                 const std::vector<double>& order_biases,
                                 const std::vector<double>& ratio_biases,
                                 double lambda);

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_BIAS_SETTING_H_
