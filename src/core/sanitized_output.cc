#include "core/sanitized_output.h"

#include <algorithm>
#include <sstream>

namespace butterfly {

void SanitizedOutput::Add(SanitizedItemset item) {
  items_.push_back(std::move(item));
  sealed_ = false;
}

void SanitizedOutput::Seal() {
  std::sort(items_.begin(), items_.end(),
            [](const SanitizedItemset& a, const SanitizedItemset& b) {
              return a.itemset < b.itemset;
            });
  sealed_ = true;
}

std::optional<Support> SanitizedOutput::SanitizedSupportOf(
    const Itemset& itemset) const {
  const SanitizedItemset* item = Find(itemset);
  if (!item) return std::nullopt;
  return item->sanitized_support;
}

const SanitizedItemset* SanitizedOutput::Find(const Itemset& itemset) const {
  if (sealed_) {
    auto it = std::lower_bound(items_.begin(), items_.end(), itemset,
                               [](const SanitizedItemset& a, const Itemset& b) {
                                 return a.itemset < b;
                               });
    if (it == items_.end() || !(it->itemset == itemset)) return nullptr;
    return &*it;
  }
  for (const SanitizedItemset& item : items_) {
    if (item.itemset == itemset) return &item;
  }
  return nullptr;
}

RealSupportProvider SanitizedOutput::AsEstimatorProvider() const {
  return [this](const Itemset& itemset) -> std::optional<double> {
    if (itemset.empty()) return static_cast<double>(window_size_);
    const SanitizedItemset* item = Find(itemset);
    if (!item) return std::nullopt;
    return static_cast<double>(item->sanitized_support) - item->bias;
  };
}

std::string SanitizedOutput::ToString() const {
  std::ostringstream out;
  out << "SanitizedOutput(C=" << min_support_ << ", H=" << window_size_
      << ", " << items_.size() << " itemsets)\n";
  for (const SanitizedItemset& item : items_) {
    out << "  " << item.itemset.ToString() << " : " << item.sanitized_support
        << '\n';
  }
  return out.str();
}

}  // namespace butterfly
