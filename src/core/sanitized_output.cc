#include "core/sanitized_output.h"

#include <algorithm>
#include <sstream>

namespace butterfly {

void SanitizedOutput::Add(SanitizedItemset item) {
  index_.emplace(item.itemset, items_.size());
  items_.push_back(std::move(item));
}

void SanitizedOutput::Seal() {
  std::sort(items_.begin(), items_.end(),
            [](const SanitizedItemset& a, const SanitizedItemset& b) {
              return a.itemset < b.itemset;
            });
  index_.clear();
  for (size_t i = 0; i < items_.size(); ++i) {
    index_.emplace(items_[i].itemset, i);
  }
}

std::optional<Support> SanitizedOutput::SanitizedSupportOf(
    const Itemset& itemset) const {
  const SanitizedItemset* item = Find(itemset);
  if (!item) return std::nullopt;
  return item->sanitized_support;
}

const SanitizedItemset* SanitizedOutput::Find(const Itemset& itemset) const {
  auto it = index_.find(itemset);
  if (it == index_.end()) return nullptr;
  return &items_[it->second];
}

RealSupportProvider SanitizedOutput::AsEstimatorProvider() const {
  return [this](const Itemset& itemset) -> std::optional<double> {
    if (itemset.empty()) return static_cast<double>(window_size_);
    const SanitizedItemset* item = Find(itemset);
    if (!item) return std::nullopt;
    return static_cast<double>(item->sanitized_support) - item->bias;
  };
}

std::string SanitizedOutput::ToString() const {
  std::ostringstream out;
  out << "SanitizedOutput(C=" << min_support_ << ", H=" << window_size_
      << ", " << items_.size() << " itemsets)\n";
  for (const SanitizedItemset& item : items_) {
    out << "  " << item.itemset.ToString() << " : " << item.sanitized_support
        << '\n';
  }
  return out.str();
}

}  // namespace butterfly
