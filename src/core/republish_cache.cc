#include "core/republish_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "persist/serializer.h"

namespace butterfly {

namespace {
constexpr uint32_t kCacheTag = persist::SectionTag('R', 'P', 'U', 'B');
}  // namespace

std::optional<RepublishCache::Entry> RepublishCache::Lookup(
    const Itemset& itemset, Support true_support) {
  auto it = entries_.find(itemset);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.entry.true_support != true_support) return std::nullopt;
  it->second.last_seen = epoch_;
  return it->second.entry;
}

void RepublishCache::Store(const Itemset& itemset, const Entry& entry) {
  Slot& slot = entries_[itemset];
  slot.entry = entry;
  slot.last_seen = epoch_;
}

void RepublishCache::Checkpoint(persist::CheckpointWriter* writer) const {
  writer->Tag(kCacheTag);
  writer->U64(max_idle_epochs_);
  writer->U64(epoch_);
  std::vector<const std::pair<const Itemset, Slot>*> sorted;
  sorted.reserve(entries_.size());
  // bfly-lint: allow(unordered-iteration) materialized and sorted below
  for (const auto& kv : entries_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  writer->U64(sorted.size());
  for (const auto* kv : sorted) {
    writer->WriteItemset(kv->first);
    writer->I64(kv->second.entry.true_support);
    writer->I64(kv->second.entry.sanitized_support);
    writer->F64(kv->second.entry.bias);
    writer->F64(kv->second.entry.variance);
    writer->U64(kv->second.last_seen);
  }
}

Status RepublishCache::Restore(persist::CheckpointReader* reader) {
  if (Status s = reader->ExpectTag(kCacheTag, "republish cache"); !s.ok()) {
    return s;
  }
  const uint64_t max_idle = reader->U64();
  const uint64_t epoch = reader->U64();
  const uint64_t count = reader->ReadCount(48, "republish entries");
  if (!reader->ok()) return reader->status();
  std::unordered_map<Itemset, Slot, ItemsetHash> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Itemset itemset;
    if (Status s = reader->ReadItemset(&itemset); !s.ok()) return s;
    Slot slot;
    slot.entry.true_support = reader->I64();
    slot.entry.sanitized_support = reader->I64();
    slot.entry.bias = reader->F64();
    slot.entry.variance = reader->F64();
    slot.last_seen = reader->U64();
    if (!reader->ok()) return reader->status();
    if (!entries.emplace(std::move(itemset), slot).second) {
      return reader->Fail("checkpoint corrupt: duplicate republish entry");
    }
  }
  max_idle_epochs_ = max_idle;
  epoch_ = epoch;
  entries_ = std::move(entries);
  return Status::OK();
}

void RepublishCache::NextEpoch() {
  ++epoch_;
  if (epoch_ < max_idle_epochs_) return;
  uint64_t cutoff = epoch_ - max_idle_epochs_;
  // bfly-lint: allow(unordered-iteration) erase-only idle sweep; which
  // entries survive depends on last_seen, not visit order, and no ordering
  // escapes this function.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.last_seen < cutoff) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace butterfly
