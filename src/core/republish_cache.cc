#include "core/republish_cache.h"

namespace butterfly {

std::optional<RepublishCache::Entry> RepublishCache::Lookup(
    const Itemset& itemset, Support true_support) {
  auto it = entries_.find(itemset);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.entry.true_support != true_support) return std::nullopt;
  it->second.last_seen = epoch_;
  return it->second.entry;
}

void RepublishCache::Store(const Itemset& itemset, const Entry& entry) {
  Slot& slot = entries_[itemset];
  slot.entry = entry;
  slot.last_seen = epoch_;
}

void RepublishCache::NextEpoch() {
  ++epoch_;
  if (epoch_ < max_idle_epochs_) return;
  uint64_t cutoff = epoch_ - max_idle_epochs_;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.last_seen < cutoff) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace butterfly
