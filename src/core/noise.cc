#include "core/noise.h"

#include <cassert>
#include <cmath>

namespace butterfly {

NoiseModel::NoiseModel(double delta, Support vulnerable_support) {
  assert(delta > 0);
  assert(vulnerable_support > 0);
  double k = static_cast<double>(vulnerable_support);
  // Smallest integer region length whose variance meets σ² ≥ δK²/2.
  double exact = std::sqrt(1.0 + 6.0 * delta * k * k) - 1.0;
  alpha_ = static_cast<int64_t>(std::ceil(exact - 1e-9));
  if (alpha_ < 1) alpha_ = 1;
  double n = static_cast<double>(alpha_) + 1.0;
  variance_ = (n * n - 1.0) / 12.0;
}

DiscreteUniform NoiseModel::Centered(double bias) const {
  int64_t lo = static_cast<int64_t>(
      std::llround(bias - static_cast<double>(alpha_) / 2.0));
  return DiscreteUniform(lo, lo + alpha_);
}

}  // namespace butterfly
