#include "core/stream_engine.h"

#include <bit>
#include <cstdint>
#include <memory>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "persist/serializer.h"
#include "policy/butterfly_policy.h"

namespace butterfly {

namespace {

constexpr uint32_t kEngineTag = persist::SectionTag('S', 'P', 'E', '1');
constexpr uint32_t kConfigTag = persist::SectionTag('C', 'O', 'N', 'F');

/// Serializes every ButterflyConfig field in a fixed order. The config is
/// part of the snapshot so LoadEngineCheckpoint is self-contained, and so a
/// restore into a mismatched engine fails loudly instead of resuming under
/// different parameters (which would silently break the determinism and the
/// privacy guarantees the checkpoint exists to preserve).
void WriteConfig(persist::CheckpointWriter* writer,
                 const ButterflyConfig& config) {
  writer->Tag(kConfigTag);
  writer->F64(config.epsilon);
  writer->F64(config.delta);
  writer->I64(config.min_support);
  writer->I64(config.vulnerable_support);
  writer->U8(static_cast<uint8_t>(config.scheme));
  writer->F64(config.lambda);
  writer->U64(config.order_opt.gamma);
  writer->U64(config.order_opt.max_states);
  writer->U64(config.order_opt.max_candidates);
  writer->Bool(config.republish_cache);
  writer->Bool(config.cache_bias_settings);
  writer->I64(config.bias_cache_tolerance);
  writer->U64(config.bias_memo_capacity);
  writer->Bool(config.hybrid_index);
  writer->U64(config.seed);
  writer->I64(config.threads);
  writer->U8(static_cast<uint8_t>(config.policy));
  writer->F64(config.policy_epsilon);
  writer->U64(config.policy_top_k);
}

Status ReadConfig(persist::CheckpointReader* reader, ButterflyConfig* config) {
  if (Status s = reader->ExpectTag(kConfigTag, "engine config"); !s.ok()) {
    return s;
  }
  config->epsilon = reader->F64();
  config->delta = reader->F64();
  config->min_support = reader->I64();
  config->vulnerable_support = reader->I64();
  const uint8_t scheme = reader->U8();
  if (reader->ok() && scheme > static_cast<uint8_t>(ButterflyScheme::kHybrid)) {
    return reader->Fail("checkpoint corrupt: unknown scheme value");
  }
  config->scheme = static_cast<ButterflyScheme>(scheme);
  config->lambda = reader->F64();
  config->order_opt.gamma = reader->U64();
  config->order_opt.max_states = reader->U64();
  config->order_opt.max_candidates = reader->U64();
  config->republish_cache = reader->Bool();
  config->cache_bias_settings = reader->Bool();
  config->bias_cache_tolerance = reader->I64();
  config->bias_memo_capacity = reader->U64();
  config->hybrid_index = reader->Bool();
  config->seed = reader->U64();
  config->threads = reader->I64();
  const uint8_t policy = reader->U8();
  if (reader->ok() &&
      policy > static_cast<uint8_t>(ReleasePolicyKind::kHeavyHitter)) {
    return reader->Fail("checkpoint corrupt: unknown release policy value");
  }
  config->policy = static_cast<ReleasePolicyKind>(policy);
  config->policy_epsilon = reader->F64();
  config->policy_top_k = static_cast<size_t>(reader->U64());
  return reader->status();
}

/// Bit-exact double comparison (configs never hold NaN — Validate rejects
/// them — but bit comparison keeps the check total anyway).
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool SameConfig(const ButterflyConfig& a, const ButterflyConfig& b) {
  return SameBits(a.epsilon, b.epsilon) && SameBits(a.delta, b.delta) &&
         a.min_support == b.min_support &&
         a.vulnerable_support == b.vulnerable_support &&
         a.scheme == b.scheme && SameBits(a.lambda, b.lambda) &&
         a.order_opt.gamma == b.order_opt.gamma &&
         a.order_opt.max_states == b.order_opt.max_states &&
         a.order_opt.max_candidates == b.order_opt.max_candidates &&
         a.republish_cache == b.republish_cache &&
         a.cache_bias_settings == b.cache_bias_settings &&
         a.bias_cache_tolerance == b.bias_cache_tolerance &&
         a.bias_memo_capacity == b.bias_memo_capacity &&
         a.hybrid_index == b.hybrid_index && a.seed == b.seed &&
         a.threads == b.threads && a.policy == b.policy &&
         SameBits(a.policy_epsilon, b.policy_epsilon) &&
         a.policy_top_k == b.policy_top_k;
}

/// Maps a policy's per-release stats into the engine-level snapshot.
void CopyPolicyStats(const PolicyStats& policy, EngineStats* stats) {
  stats->partition_ns = policy.partition_ns;
  stats->bias_ns = policy.bias_ns;
  stats->noise_ns = policy.noise_ns;
  stats->emit_ns = policy.emit_ns;
  stats->bias_cache_hit = policy.bias_cache_hit;
  stats->bias_memo_hit = policy.bias_memo_hit;
  stats->bias_memo_hits = policy.bias_memo_hits;
  stats->bias_memo_misses = policy.bias_memo_misses;
  stats->epoch = policy.epoch;
  stats->epsilon_spent = policy.epsilon_spent;
  stats->epsilon_cumulative = policy.epsilon_cumulative;
}

}  // namespace

void FillIndexMemoryStats(const WindowBitmapIndex& index, EngineStats* stats) {
  const IndexMemoryStats mem = index.MemoryStats();
  stats->index_bytes = mem.index_bytes;
  stats->index_dense_equivalent_bytes = mem.dense_equivalent_bytes;
  stats->index_array_rows = mem.array_rows;
  stats->index_bitmap_rows = mem.bitmap_rows;
  stats->index_run_rows = mem.run_rows;
  stats->index_pinned_rows = mem.pinned_rows;
}

Result<StreamPrivacyEngine> StreamPrivacyEngine::Create(
    size_t window_capacity, const ButterflyConfig& config) {
  if (window_capacity == 0) {
    return Status::InvalidArgument("window_capacity must be positive");
  }
  Status status = config.Validate();
  if (!status.ok()) return status;
  return StreamPrivacyEngine(window_capacity, config);
}

ButterflyEngine& StreamPrivacyEngine::sanitizer() {
  BFLY_CHECK_MSG(policy_->kind() == ReleasePolicyKind::kButterfly,
                 "sanitizer() requires the butterfly release policy; this "
                 "engine runs a DP backend — use release_policy() instead");
  return static_cast<ButterflyReleasePolicy&>(*policy_).engine();
}

const ButterflyEngine& StreamPrivacyEngine::sanitizer() const {
  BFLY_CHECK_MSG(policy_->kind() == ReleasePolicyKind::kButterfly,
                 "sanitizer() requires the butterfly release policy; this "
                 "engine runs a DP backend — use release_policy() instead");
  return static_cast<const ButterflyReleasePolicy&>(*policy_).engine();
}

WindowContext StreamPrivacyEngine::MakeWindowContext(
    const FecPartitioner& part) const {
  WindowContext ctx;
  ctx.window_size = static_cast<Support>(miner_.window().size());
  ctx.stream_position = miner_.window().stream_position();
  ctx.fecs = &part.view();
  ctx.total_itemsets = part.total_members();
  return ctx;
}

ReleaseResult StreamPrivacyEngine::Release() {
  // The OnWorkerThread() leg mirrors ReleaseAsync's re-entrancy guard:
  // called from a pool task (a fleet release batch), the release must run
  // inline rather than bounce through an async flight.
  if (pipelined_ && pipeline_pool_ != nullptr &&
      !ThreadPool::OnWorkerThread()) {
    return ReleaseAsync().Wait();
  }
  ReleaseResult result;
  const MiningOutput& raw = miner_.GetAllFrequentIncremental();
  FecPartitioner& part = partitions_[active_partition_];
  part.Sync(raw, miner_.expansion_version(), miner_.last_expansion_delta());
  PolicyStats policy_stats;
  result.output = policy_->Release(raw, MakeWindowContext(part), &policy_stats);
  CopyPolicyStats(policy_stats, &result.stats);
  result.stats.mine_ns = mine_ns_;
  mine_ns_ = 0;
  result.stats.frequent_itemsets = raw.size();
  result.stats.fec_count = part.view().size();
  FillIndexMemoryStats(miner_.bitmap_index(), &result.stats);
  return result;
}

ReleaseResult StreamPrivacyEngine::ReleaseTicket::Wait() {
  BFLY_CHECK_MSG(flight_ != nullptr,
                 "Wait() on an empty or already-consumed release ticket");
  ReleaseResult result;
  {
    MutexLock lock(&flight_->mu);
    while (!flight_->done) flight_->cv.Wait(&flight_->mu);
    result = std::move(flight_->result);
  }
  flight_.reset();
  return result;
}

void StreamPrivacyEngine::SetPipelined(bool on) {
  if (!on) JoinInflight();
  pipelined_ = on;
  pipeline_pool_ = on ? SharedPool(ResolveThreadCount(config().threads))
                      : nullptr;
}

bool StreamPrivacyEngine::ReleaseInFlight() const {
  if (!inflight_) return false;
  MutexLock lock(&inflight_->mu);
  return !inflight_->done;
}

void StreamPrivacyEngine::JoinInflight() {
  if (!inflight_) return;
  {
    MutexLock lock(&inflight_->mu);
    while (!inflight_->done) inflight_->cv.Wait(&inflight_->mu);
  }
  inflight_.reset();
}

StreamPrivacyEngine::ReleaseTicket StreamPrivacyEngine::ReleaseAsync() {
  auto flight = std::make_shared<ReleaseTicket::Flight>();
  // Re-entrancy guard: inside a fleet, engine calls run on pool workers.
  // A pipelined ReleaseAsync would Submit the sanitize stage and the next
  // one would JoinInflight() — a worker blocking on a task queued *behind*
  // every other release task, which deadlocks once all workers wait at
  // once. On a worker thread the flight therefore completes synchronously
  // (the batch-level overlap the fleet scheduler provides is the same
  // overlap pipelining buys a solo engine).
  if (!pipelined_ || pipeline_pool_ == nullptr ||
      ThreadPool::OnWorkerThread()) {
    // Degenerate (serial) flight: complete before anyone can wait on it.
    flight->result = Release();
    MutexLock lock(&flight->mu);
    flight->done = true;
    return ReleaseTicket(std::move(flight));
  }

  // Caller-side stage: snapshot everything the background stage reads. The
  // previous flight may still be sanitizing the *other* partition buffer —
  // the mining view and the idle buffer are disjoint from it, so this whole
  // stage overlaps with that flight.
  const MiningOutput& raw = miner_.GetAllFrequentIncremental();
  const uint64_t version = miner_.expansion_version();
  const MiningOutputDelta& delta = miner_.last_expansion_delta();
  const size_t next = active_partition_ ^ 1;
  FecPartitioner& part = partitions_[next];
  if (has_pending_delta_) part.ApplyDelta(pending_version_, pending_delta_);
  part.Sync(raw, version, delta);
  // Save this release's delta so the now-idle buffer (which will be exactly
  // one version behind when it is next used) can catch up incrementally.
  pending_delta_ = delta;
  pending_version_ = version;
  has_pending_delta_ = true;
  active_partition_ = next;

  EngineStats stats;
  stats.mine_ns = mine_ns_;
  mine_ns_ = 0;
  stats.frequent_itemsets = raw.size();
  stats.fec_count = part.view().size();
  // Index memory must be snapshotted on the caller thread: the miner keeps
  // mutating the row table while the flight sanitizes.
  FillIndexMemoryStats(miner_.bitmap_index(), &stats);
  // The context is snapshotted here, on the caller's thread: window size and
  // stream position advance with the very next Append, and the view pointer
  // must name the buffer synced above, not whichever is active later.
  const WindowContext ctx = MakeWindowContext(part);

  // The policy is exclusive: join the previous flight before handing it
  // the new window. (Submit's queue mutex publishes the partition writes
  // above to the worker.)
  JoinInflight();
  flight->result.stats = stats;
  inflight_ = flight;
  pipeline_pool_->Submit([this, flight, ctx] {
    PolicyStats policy_stats;
    flight->result.output = policy_->ReleaseFromView(ctx, &policy_stats);
    EngineStats& s = flight->result.stats;
    CopyPolicyStats(policy_stats, &s);
    {
      MutexLock lock(&flight->mu);
      flight->done = true;
    }
    flight->cv.NotifyAll();
  });
  return ReleaseTicket(std::move(flight));
}

void StreamPrivacyEngine::Checkpoint(persist::CheckpointWriter* writer) const {
  BFLY_CHECK_MSG(!ReleaseInFlight(),
                 "checkpoint requires no in-flight pipelined release; Wait() "
                 "on the outstanding ticket first");
  writer->Tag(kEngineTag);
  writer->U64(miner_.window().capacity());
  WriteConfig(writer, config());
  miner_.Checkpoint(writer);
  policy_->Checkpoint(writer);
}

Status StreamPrivacyEngine::RestoreBody(persist::CheckpointReader* reader) {
  JoinInflight();
  if (Status s = miner_.Restore(reader); !s.ok()) return s;
  if (Status s = policy_->Restore(reader); !s.ok()) return s;
  // Reconstructible state: the FEC partitions resync from the first
  // post-restore expansion, and the mine-time accumulator restarts. The
  // pipelining mode itself is scheduling, not state, and survives as set.
  partitions_[0].Reset();
  partitions_[1].Reset();
  active_partition_ = 0;
  has_pending_delta_ = false;
  pending_version_ = 0;
  pending_delta_.Reset();
  mine_ns_ = 0;
  return Status::OK();
}

Status StreamPrivacyEngine::Restore(persist::CheckpointReader* reader) {
  if (Status s = reader->ExpectTag(kEngineTag, "stream engine"); !s.ok()) {
    return s;
  }
  const uint64_t capacity = reader->U64();
  ButterflyConfig config;
  if (Status s = ReadConfig(reader, &config); !s.ok()) return s;
  if (capacity != miner_.window().capacity()) {
    return Status::InvalidArgument(
        "checkpoint window capacity " + std::to_string(capacity) +
        " does not match this engine's " +
        std::to_string(miner_.window().capacity()));
  }
  if (!SameConfig(config, this->config())) {
    return Status::InvalidArgument(
        "checkpoint config does not match this engine's; restore into an "
        "engine created with the identical configuration (or use "
        "FromCheckpoint / LoadEngineCheckpoint)");
  }
  return RestoreBody(reader);
}

Result<StreamPrivacyEngine> StreamPrivacyEngine::FromCheckpoint(
    persist::CheckpointReader* reader) {
  if (Status s = reader->ExpectTag(kEngineTag, "stream engine"); !s.ok()) {
    return s;
  }
  const uint64_t capacity = reader->U64();
  ButterflyConfig config;
  if (Status s = ReadConfig(reader, &config); !s.ok()) return s;
  Result<StreamPrivacyEngine> engine =
      Create(static_cast<size_t>(capacity), config);
  if (!engine.ok()) return engine.status();
  if (Status s = engine->RestoreBody(reader); !s.ok()) return s;
  return engine;
}

}  // namespace butterfly
