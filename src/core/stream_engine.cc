#include "core/stream_engine.h"

namespace butterfly {

Result<StreamPrivacyEngine> StreamPrivacyEngine::Create(
    size_t window_capacity, const ButterflyConfig& config) {
  if (window_capacity == 0) {
    return Status::InvalidArgument("window_capacity must be positive");
  }
  Status status = config.Validate();
  if (!status.ok()) return status;
  return StreamPrivacyEngine(window_capacity, config);
}

}  // namespace butterfly
