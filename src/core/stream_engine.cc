#include "core/stream_engine.h"

#include <bit>
#include <cstdint>

#include "persist/serializer.h"

namespace butterfly {

namespace {

constexpr uint32_t kEngineTag = persist::SectionTag('S', 'P', 'E', '1');
constexpr uint32_t kConfigTag = persist::SectionTag('C', 'O', 'N', 'F');

/// Serializes every ButterflyConfig field in a fixed order. The config is
/// part of the snapshot so LoadEngineCheckpoint is self-contained, and so a
/// restore into a mismatched engine fails loudly instead of resuming under
/// different parameters (which would silently break the determinism and the
/// privacy guarantees the checkpoint exists to preserve).
void WriteConfig(persist::CheckpointWriter* writer,
                 const ButterflyConfig& config) {
  writer->Tag(kConfigTag);
  writer->F64(config.epsilon);
  writer->F64(config.delta);
  writer->I64(config.min_support);
  writer->I64(config.vulnerable_support);
  writer->U8(static_cast<uint8_t>(config.scheme));
  writer->F64(config.lambda);
  writer->U64(config.order_opt.gamma);
  writer->U64(config.order_opt.max_states);
  writer->U64(config.order_opt.max_candidates);
  writer->Bool(config.republish_cache);
  writer->Bool(config.cache_bias_settings);
  writer->I64(config.bias_cache_tolerance);
  writer->U64(config.bias_memo_capacity);
  writer->U64(config.seed);
  writer->I64(config.threads);
}

Status ReadConfig(persist::CheckpointReader* reader, ButterflyConfig* config) {
  if (Status s = reader->ExpectTag(kConfigTag, "engine config"); !s.ok()) {
    return s;
  }
  config->epsilon = reader->F64();
  config->delta = reader->F64();
  config->min_support = reader->I64();
  config->vulnerable_support = reader->I64();
  const uint8_t scheme = reader->U8();
  if (reader->ok() && scheme > static_cast<uint8_t>(ButterflyScheme::kHybrid)) {
    return reader->Fail("checkpoint corrupt: unknown scheme value");
  }
  config->scheme = static_cast<ButterflyScheme>(scheme);
  config->lambda = reader->F64();
  config->order_opt.gamma = reader->U64();
  config->order_opt.max_states = reader->U64();
  config->order_opt.max_candidates = reader->U64();
  config->republish_cache = reader->Bool();
  config->cache_bias_settings = reader->Bool();
  config->bias_cache_tolerance = reader->I64();
  config->bias_memo_capacity = reader->U64();
  config->seed = reader->U64();
  config->threads = reader->I64();
  return reader->status();
}

/// Bit-exact double comparison (configs never hold NaN — Validate rejects
/// them — but bit comparison keeps the check total anyway).
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool SameConfig(const ButterflyConfig& a, const ButterflyConfig& b) {
  return SameBits(a.epsilon, b.epsilon) && SameBits(a.delta, b.delta) &&
         a.min_support == b.min_support &&
         a.vulnerable_support == b.vulnerable_support &&
         a.scheme == b.scheme && SameBits(a.lambda, b.lambda) &&
         a.order_opt.gamma == b.order_opt.gamma &&
         a.order_opt.max_states == b.order_opt.max_states &&
         a.order_opt.max_candidates == b.order_opt.max_candidates &&
         a.republish_cache == b.republish_cache &&
         a.cache_bias_settings == b.cache_bias_settings &&
         a.bias_cache_tolerance == b.bias_cache_tolerance &&
         a.bias_memo_capacity == b.bias_memo_capacity && a.seed == b.seed &&
         a.threads == b.threads;
}

}  // namespace

Result<StreamPrivacyEngine> StreamPrivacyEngine::Create(
    size_t window_capacity, const ButterflyConfig& config) {
  if (window_capacity == 0) {
    return Status::InvalidArgument("window_capacity must be positive");
  }
  Status status = config.Validate();
  if (!status.ok()) return status;
  return StreamPrivacyEngine(window_capacity, config);
}

void StreamPrivacyEngine::Checkpoint(persist::CheckpointWriter* writer) const {
  writer->Tag(kEngineTag);
  writer->U64(miner_.window().capacity());
  WriteConfig(writer, config());
  miner_.Checkpoint(writer);
  sanitizer_.Checkpoint(writer);
}

Status StreamPrivacyEngine::RestoreBody(persist::CheckpointReader* reader) {
  if (Status s = miner_.Restore(reader); !s.ok()) return s;
  if (Status s = sanitizer_.Restore(reader); !s.ok()) return s;
  // Reconstructible state: the FEC partition resyncs from the first
  // post-restore expansion, and the mine-time accumulator restarts.
  fec_partition_.Reset();
  mine_ns_ = 0;
  return Status::OK();
}

Status StreamPrivacyEngine::Restore(persist::CheckpointReader* reader) {
  if (Status s = reader->ExpectTag(kEngineTag, "stream engine"); !s.ok()) {
    return s;
  }
  const uint64_t capacity = reader->U64();
  ButterflyConfig config;
  if (Status s = ReadConfig(reader, &config); !s.ok()) return s;
  if (capacity != miner_.window().capacity()) {
    return Status::InvalidArgument(
        "checkpoint window capacity " + std::to_string(capacity) +
        " does not match this engine's " +
        std::to_string(miner_.window().capacity()));
  }
  if (!SameConfig(config, this->config())) {
    return Status::InvalidArgument(
        "checkpoint config does not match this engine's; restore into an "
        "engine created with the identical configuration (or use "
        "FromCheckpoint / LoadEngineCheckpoint)");
  }
  return RestoreBody(reader);
}

Result<StreamPrivacyEngine> StreamPrivacyEngine::FromCheckpoint(
    persist::CheckpointReader* reader) {
  if (Status s = reader->ExpectTag(kEngineTag, "stream engine"); !s.ok()) {
    return s;
  }
  const uint64_t capacity = reader->U64();
  ButterflyConfig config;
  if (Status s = ReadConfig(reader, &config); !s.ok()) return s;
  Result<StreamPrivacyEngine> engine =
      Create(static_cast<size_t>(capacity), config);
  if (!engine.ok()) return engine.status();
  if (Status s = engine->RestoreBody(reader); !s.ok()) return s;
  return engine;
}

}  // namespace butterfly
