/// \file parameter_advisor.h
/// \brief Helping operators choose feasible (ε, δ) pairs.
///
/// The requirement pair must satisfy ε/δ ≥ K²/(2C²) — and, because the noise
/// region length is an integer, slightly more than that (the realized
/// variance can overshoot δK²/2). These helpers compute the exact feasible
/// boundary so callers are not left probing Validate() by trial and error.

#ifndef BUTTERFLY_CORE_PARAMETER_ADVISOR_H_
#define BUTTERFLY_CORE_PARAMETER_ADVISOR_H_

#include "common/types.h"

namespace butterfly {

/// The smallest ε for which (ε, delta) is feasible at thresholds (C, K),
/// including the integer-discretization margin: ε_min = σ²_realized / C².
double MinFeasibleEpsilon(double delta, Support min_support,
                          Support vulnerable_support);

/// The largest δ for which (epsilon, δ) is feasible at thresholds (C, K):
/// the biggest δ whose realized σ² still fits the ε budget. Returns 0 when
/// even the smallest region (α = 1) exceeds the budget.
double MaxFeasibleDelta(double epsilon, Support min_support,
                        Support vulnerable_support);

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_PARAMETER_ADVISOR_H_
