/// \file butterfly.h
/// \brief ButterflyEngine: the paper's output-privacy countermeasure.
///
/// Feed it the raw frequent-itemset output of each window; it returns the
/// sanitized release. The engine
///   1. partitions the itemsets into frequency equivalence classes,
///   2. sets per-FEC biases by the configured scheme (basic / order- /
///      ratio-preserving / hybrid) within each FEC's maximum adjustable
///      bias, honoring the (ε, δ) requirement,
///   3. perturbs supports with discrete-uniform noise (shared per FEC for
///      the optimized schemes, independent per itemset for basic),
///   4. pins sanitized values across windows while true supports are
///      unchanged (republish cache, Prior Knowledge 2).
///
/// The bias-setting stage is cached at two levels: the previous window's
/// profiles (with optional drift tolerance, ButterflyConfig::
/// bias_cache_tolerance) and a cross-window memo keyed on the exact FEC
/// support-profile vector (profiles repeat heavily under sliding windows),
/// so repeated profiles skip the Algorithm 1 DP entirely while producing
/// bit-identical biases.

#ifndef BUTTERFLY_CORE_BUTTERFLY_H_
#define BUTTERFLY_CORE_BUTTERFLY_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/bias_setting.h"
#include "core/config.h"
#include "core/fec.h"
#include "core/noise.h"
#include "core/republish_cache.h"
#include "core/sanitized_output.h"
#include "mining/mining_result.h"

namespace butterfly {

namespace persist {
class CheckpointWriter;
class CheckpointReader;
}  // namespace persist

/// Wall-clock breakdown of the last Sanitize call, in nanoseconds per stage.
/// Exposed for the overhead benchmarks (fig8_overhead emits these into
/// BENCH_overhead.json) and for tests pinning the cache behavior.
struct SanitizeStageTimes {
  double partition_ns = 0;  ///< FEC partition + profile construction
  double bias_ns = 0;       ///< bias reuse/memo lookup + DP on a miss
  double noise_ns = 0;      ///< per-itemset perturbation (parallel phase)
  double emit_ns = 0;       ///< republish pinning + release assembly + seal
  bool bias_cache_hit = false;  ///< previous-window bias reuse fired
  bool bias_memo_hit = false;   ///< cross-window DP memo fired
};

class ButterflyEngine {
 public:
  /// Validates \p config and builds an engine. Prefer this over the ctor.
  static Result<ButterflyEngine> Create(const ButterflyConfig& config);

  /// Builds an engine without validation (asserts on invalid input in debug
  /// builds); use Create for untrusted configuration.
  explicit ButterflyEngine(const ButterflyConfig& config);

  /// Sanitizes one window's frequent-itemset output. \p window_size is the
  /// (public) window size H, carried into the release for the adversary
  /// model and the metrics.
  ///
  /// \p fecs optionally supplies a prebuilt FEC partition of \p frequent
  /// (strictly ascending by support, partitioning it exactly) — the fast
  /// path StreamPrivacyEngine maintains incrementally across window slides.
  /// With fecs == nullptr the engine partitions from scratch. Both paths
  /// emit the bit-identical release; the prebuilt one only skips work.
  ///
  /// Noise is drawn from counter-based streams keyed on (engine seed,
  /// release epoch, itemset / FEC identity), so the release is a pure
  /// function of the engine's seed, its call history length, and the input —
  /// independent of FEC iteration order and of `config.threads`. With
  /// threads > 1 the per-itemset work is spread over a shared ThreadPool and
  /// the output is bit-identical to the serial release.
  SanitizedOutput Sanitize(const MiningOutput& frequent, Support window_size,
                           const FecView* fecs = nullptr);

  /// Sanitizes one window given only its FEC partition view — the release is
  /// a pure function of the partition, so no MiningOutput is needed. This is
  /// the entry point of the pipelined Release path, which snapshots a
  /// partition and sanitizes it on the pool while the miner advances.
  /// \p total_itemsets must equal the total member count of \p fecs.
  SanitizedOutput SanitizeView(const FecView& fecs, size_t total_itemsets,
                               Support window_size);

  /// The per-FEC biases the configured scheme would assign to \p frequent —
  /// exposed for tests and for the bias-setting benchmarks.
  std::vector<double> ComputeBiases(const std::vector<FecProfile>& profiles);

  const ButterflyConfig& config() const { return config_; }
  const NoiseModel& noise() const { return noise_; }

  /// The epoch the NEXT Sanitize call will release under. Each call consumes
  /// one epoch; the (seed, epoch) pair keys every noise stream, so this
  /// counter is essential checkpoint state — a restored engine must continue
  /// the sequence, not restart it.
  uint64_t epoch() const { return epoch_; }

  /// True iff the last Sanitize call reused cached bias settings (the FEC
  /// structure was unchanged, or the DP memo held the profile vector).
  bool last_biases_were_cached() const { return last_biases_were_cached_; }

  /// Stage breakdown of the last Sanitize call.
  const SanitizeStageTimes& last_stage_times() const {
    return last_stage_times_;
  }

  /// Cumulative cross-window DP-memo hits / misses (misses count only
  /// windows that ran the optimizer, not previous-window cache hits).
  uint64_t bias_memo_hits() const { return bias_memo_hits_; }
  uint64_t bias_memo_misses() const { return bias_memo_misses_; }

  /// Drops every pinned sanitized value so the next Sanitize draws fresh
  /// noise. Intended for audit-driven redraw: bounded noise admits unlucky
  /// draws whose constraint system provably pins a vulnerable pattern
  /// (see metrics/auditor.h); the mitigation is to discard the draw and
  /// re-sanitize. Use sparingly — the adversary knowing that rejected
  /// configurations are impossible is itself a (second-order) leak.
  void ForgetPinnedValues() { cache_.Clear(); }

  /// Serializes the sanitizer's essential cross-release state: the epoch
  /// counter, the republish cache, and the previous window's bias settings
  /// (essential under a nonzero bias_cache_tolerance, where the reuse path
  /// may legitimately diverge from a fresh optimization). The DP memo is
  /// reconstructible — memo hits are bit-identical to recomputation — and is
  /// dropped; so are the stage timings and memo hit counters. The config is
  /// serialized by the owner (StreamPrivacyEngine), not here.
  void Checkpoint(persist::CheckpointWriter* writer) const;

  /// Restores from a checkpoint section into an engine built with the same
  /// config. Resets the DP memo and diagnostics; returns Status errors on
  /// corrupted sections.
  Status Restore(persist::CheckpointReader* reader);

 private:
  /// Attempts to satisfy this window's bias setting from the cached one
  /// (incremental mode); see ButterflyConfig::bias_cache_tolerance.
  bool TryReuseBiases(const std::vector<FecProfile>& profiles,
                      std::vector<double>* biases);

  /// Cross-window DP memo (exact profile-vector match). Lookup returns true
  /// and fills \p biases on a hit; Insert stores a fresh optimization,
  /// evicting the least recently used entry past the configured capacity.
  bool MemoLookup(const std::vector<FecProfile>& profiles,
                  std::vector<double>* biases);
  void MemoInsert(const std::vector<FecProfile>& profiles,
                  const std::vector<double>& biases);
  bool MemoEnabled() const;

  ButterflyConfig config_;
  NoiseModel noise_;
  RepublishCache cache_;
  /// Release counter: the per-itemset noise streams are keyed on it, so each
  /// Sanitize call draws fresh, mutually independent noise.
  uint64_t epoch_ = 0;
  /// Shared worker pool for config_.threads > 1; nullptr when serial. Not
  /// owned (pools are process-wide, see common/thread_pool.h).
  ThreadPool* pool_ = nullptr;

  // Incremental mode: the previous window's FEC profiles and their biases.
  std::vector<FecProfile> cached_profiles_;
  std::vector<double> cached_biases_;
  bool last_biases_were_cached_ = false;

  // Cross-window DP memo: profile-vector hash -> entries (collision chain).
  struct MemoEntry {
    std::vector<FecProfile> profiles;
    std::vector<double> biases;
    uint64_t last_used = 0;
  };
  std::unordered_map<uint64_t, std::vector<MemoEntry>> bias_memo_;
  size_t bias_memo_size_ = 0;
  uint64_t bias_memo_clock_ = 0;
  uint64_t bias_memo_hits_ = 0;
  uint64_t bias_memo_misses_ = 0;

  SanitizeStageTimes last_stage_times_;

  // Preallocated hot-path scratch, reused across releases.
  BiasDpScratch dp_scratch_;
  std::vector<FecProfile> profiles_scratch_;
  std::vector<std::pair<uint32_t, uint32_t>> flat_scratch_;
  std::vector<SanitizedItemset> items_scratch_;
  std::vector<uint8_t> needs_store_scratch_;
};

/// Equality of FEC profiles, the cache key of the incremental mode.
inline bool operator==(const FecProfile& a, const FecProfile& b) {
  return a.support == b.support && a.member_count == b.member_count &&
         a.max_bias == b.max_bias;
}

/// Convenience: FecProfiles (support, member count, max adjustable bias)
/// for a mining output under the given requirement.
std::vector<FecProfile> BuildFecProfiles(const std::vector<Fec>& fecs,
                                         double epsilon,
                                         double noise_variance);

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_BUTTERFLY_H_
