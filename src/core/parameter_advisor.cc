#include "core/parameter_advisor.h"

#include <cmath>

#include "core/noise.h"

namespace butterfly {

double MinFeasibleEpsilon(double delta, Support min_support,
                          Support vulnerable_support) {
  NoiseModel noise(delta, vulnerable_support);
  double c = static_cast<double>(min_support);
  // With β = 0 the entire ε budget goes to σ²; this bound also dominates
  // the continuous ppr condition, so it is THE feasibility boundary.
  return noise.variance() / (c * c);
}

double MaxFeasibleDelta(double epsilon, Support min_support,
                        Support vulnerable_support) {
  double c = static_cast<double>(min_support);
  double k = static_cast<double>(vulnerable_support);
  double budget = epsilon * c * c;
  // Largest integer region length whose variance fits the budget:
  // ((α+1)² − 1)/12 <= budget  =>  α <= √(12·budget + 1) − 1.
  int64_t alpha = static_cast<int64_t>(
      std::floor(std::sqrt(12.0 * budget + 1.0) - 1.0 + 1e-9));
  if (alpha < 1) return 0.0;
  double variance =
      ((static_cast<double>(alpha) + 1.0) * (static_cast<double>(alpha) + 1.0) -
       1.0) /
      12.0;
  // The largest δ whose required σ² = δK²/2 is met by that region.
  return 2.0 * variance / (k * k);
}

}  // namespace butterfly
