#include "core/butterfly.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>

#include "persist/serializer.h"

namespace butterfly {

namespace {
constexpr uint32_t kSanitizerTag = persist::SectionTag('B', 'F', 'L', 'E');
}  // namespace

namespace {

/// Monotonic now, for the per-stage wall-clock breakdown.
inline std::chrono::steady_clock::time_point StageNow() {
  return std::chrono::steady_clock::now();
}

inline double StageNs(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::nano>(to - from).count();
}

/// Order-independent key of a FEC profile vector for the DP memo. Collisions
/// are resolved by exact profile comparison, so the hash only needs to be
/// well-mixed, not perfect.
uint64_t HashProfiles(const std::vector<FecProfile>& profiles) {
  uint64_t h = SplitMix64Mix(0x6275746572666c79ull ^ profiles.size());
  for (const FecProfile& p : profiles) {
    h = SplitMix64Mix(h ^ static_cast<uint64_t>(p.support));
    h = SplitMix64Mix(h ^ static_cast<uint64_t>(p.member_count));
    h = SplitMix64Mix(h ^ std::bit_cast<uint64_t>(p.max_bias));
  }
  return h;
}

}  // namespace

std::vector<FecProfile> BuildFecProfiles(const std::vector<Fec>& fecs,
                                         double epsilon,
                                         double noise_variance) {
  std::vector<FecProfile> profiles;
  profiles.reserve(fecs.size());
  for (const Fec& fec : fecs) {
    profiles.push_back(FecProfile{
        fec.support, fec.size(),
        MaxAdjustableBias(fec.support, epsilon, noise_variance)});
  }
  return profiles;
}

bool ButterflyEngine::TryReuseBiases(const std::vector<FecProfile>& profiles,
                                     std::vector<double>* biases) {
  if (cached_profiles_.size() != profiles.size() || profiles.empty()) {
    return false;
  }
  const Support tolerance = config_.bias_cache_tolerance;
  if (tolerance == 0) {
    // Exact structural match: the cached biases are bit-identical to what a
    // fresh optimization would produce.
    if (!(profiles == cached_profiles_)) return false;
    *biases = cached_biases_;
    return true;
  }
  for (size_t i = 0; i < profiles.size(); ++i) {
    Support drift = profiles[i].support - cached_profiles_[i].support;
    if (drift > tolerance || drift < -tolerance) return false;
  }
  // Clamp the cached biases into the new adjustable range and make sure the
  // estimators are still strictly increasing; otherwise fall back to a fresh
  // optimization.
  std::vector<double> candidate(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    candidate[i] = std::clamp(cached_biases_[i], -profiles[i].max_bias,
                              profiles[i].max_bias);
    if (i > 0) {
      double prev = static_cast<double>(profiles[i - 1].support) + candidate[i - 1];
      double cur = static_cast<double>(profiles[i].support) + candidate[i];
      if (cur <= prev) return false;
    }
  }
  *biases = std::move(candidate);
  return true;
}

bool ButterflyEngine::MemoEnabled() const {
  // Only the schemes that run the Algorithm 1 DP gain anything; memoizing
  // the trivial settings would just burn memory.
  return config_.bias_memo_capacity > 0 &&
         (config_.scheme == ButterflyScheme::kOrderPreserving ||
          config_.scheme == ButterflyScheme::kHybrid);
}

bool ButterflyEngine::MemoLookup(const std::vector<FecProfile>& profiles,
                                 std::vector<double>* biases) {
  if (!MemoEnabled() || profiles.empty()) return false;
  auto bucket = bias_memo_.find(HashProfiles(profiles));
  if (bucket != bias_memo_.end()) {
    for (MemoEntry& entry : bucket->second) {
      if (entry.profiles == profiles) {
        entry.last_used = ++bias_memo_clock_;
        *biases = entry.biases;
        ++bias_memo_hits_;
        return true;
      }
    }
  }
  ++bias_memo_misses_;
  return false;
}

void ButterflyEngine::MemoInsert(const std::vector<FecProfile>& profiles,
                                 const std::vector<double>& biases) {
  if (!MemoEnabled() || profiles.empty()) return;
  if (bias_memo_size_ >= config_.bias_memo_capacity) {
    // Evict the least recently used entry; a linear scan is fine at the
    // default capacity and only runs once the memo is full.
    std::unordered_map<uint64_t, std::vector<MemoEntry>>::iterator lru_bucket =
        bias_memo_.end();
    size_t lru_index = 0;
    uint64_t lru_used = UINT64_MAX;
    // bfly-lint: allow(unordered-iteration) last_used clock values are
    // unique, so the scan finds the one true minimum in any visit order;
    // memoized biases are pure functions of the profiles, so eviction
    // choice can never change a released value.
    for (auto it = bias_memo_.begin(); it != bias_memo_.end(); ++it) {
      for (size_t i = 0; i < it->second.size(); ++i) {
        if (it->second[i].last_used < lru_used) {
          lru_used = it->second[i].last_used;
          lru_bucket = it;
          lru_index = i;
        }
      }
    }
    if (lru_bucket != bias_memo_.end()) {
      lru_bucket->second.erase(lru_bucket->second.begin() + lru_index);
      if (lru_bucket->second.empty()) bias_memo_.erase(lru_bucket);
      --bias_memo_size_;
    }
  }
  std::vector<MemoEntry>& chain = bias_memo_[HashProfiles(profiles)];
  chain.push_back(MemoEntry{profiles, biases, ++bias_memo_clock_});
  ++bias_memo_size_;
}

Result<ButterflyEngine> ButterflyEngine::Create(const ButterflyConfig& config) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  return ButterflyEngine(config);
}

ButterflyEngine::ButterflyEngine(const ButterflyConfig& config)
    : config_(config),
      noise_(config.delta, config.vulnerable_support),
      pool_(SharedPool(ResolveThreadCount(config.threads))) {
  assert(config.Validate().ok());
}

std::vector<double> ButterflyEngine::ComputeBiases(
    const std::vector<FecProfile>& profiles) {
  switch (config_.scheme) {
    case ButterflyScheme::kBasic:
      return ZeroBiases(profiles.size());
    case ButterflyScheme::kOrderPreserving:
      return OrderPreservingBiases(profiles, noise_.alpha(),
                                   config_.order_opt, &dp_scratch_, pool_);
    case ButterflyScheme::kRatioPreserving:
      return RatioPreservingBiases(profiles);
    case ButterflyScheme::kHybrid: {
      std::vector<double> order = OrderPreservingBiases(
          profiles, noise_.alpha(), config_.order_opt, &dp_scratch_, pool_);
      std::vector<double> ratio = RatioPreservingBiases(profiles);
      return HybridBiases(profiles, order, ratio, config_.lambda);
    }
  }
  return ZeroBiases(profiles.size());
}

namespace {
// Domain separator keying the shared per-FEC noise streams apart from the
// per-itemset streams of the basic scheme.
constexpr uint64_t kFecStreamDomain = 0x9e3779b97f4a7c15ull;
}  // namespace

SanitizedOutput ButterflyEngine::Sanitize(const MiningOutput& frequent,
                                          Support window_size,
                                          const FecView* fecs) {
  if (fecs != nullptr) {
    return SanitizeView(*fecs, frequent.size(), window_size);
  }
  const auto start = StageNow();
  std::vector<Fec> local = PartitionIntoFecs(frequent);
  FecView view;
  view.reserve(local.size());
  for (const Fec& fec : local) view.push_back(&fec);
  const double partition_ns = StageNs(start, StageNow());
  SanitizedOutput release = SanitizeView(view, frequent.size(), window_size);
  last_stage_times_.partition_ns += partition_ns;
  return release;
}

void ButterflyEngine::Checkpoint(persist::CheckpointWriter* writer) const {
  writer->Tag(kSanitizerTag);
  writer->U64(epoch_);
  cache_.Checkpoint(writer);
  writer->U64(cached_profiles_.size());
  for (const FecProfile& p : cached_profiles_) {
    writer->I64(p.support);
    writer->U64(p.member_count);
    writer->F64(p.max_bias);
  }
  writer->U64(cached_biases_.size());
  for (double b : cached_biases_) writer->F64(b);
}

Status ButterflyEngine::Restore(persist::CheckpointReader* reader) {
  if (Status s = reader->ExpectTag(kSanitizerTag, "butterfly engine");
      !s.ok()) {
    return s;
  }
  const uint64_t epoch = reader->U64();
  if (!reader->ok()) return reader->status();
  if (Status s = cache_.Restore(reader); !s.ok()) return s;
  const uint64_t profile_count = reader->ReadCount(24, "cached FEC profiles");
  if (!reader->ok()) return reader->status();
  std::vector<FecProfile> profiles(profile_count);
  for (uint64_t i = 0; i < profile_count; ++i) {
    profiles[i].support = reader->I64();
    profiles[i].member_count = reader->U64();
    profiles[i].max_bias = reader->F64();
  }
  const uint64_t bias_count = reader->ReadCount(8, "cached biases");
  if (!reader->ok()) return reader->status();
  if (bias_count != profile_count) {
    return reader->Fail(
        "checkpoint corrupt: cached biases disagree with cached profiles");
  }
  std::vector<double> biases(bias_count);
  for (uint64_t i = 0; i < bias_count; ++i) biases[i] = reader->F64();
  if (!reader->ok()) return reader->status();

  epoch_ = epoch;
  cached_profiles_ = std::move(profiles);
  cached_biases_ = std::move(biases);
  // Reconstructible state is simply reset: the DP memo refills with
  // bit-identical entries as profiles recur, and the diagnostics restart.
  last_biases_were_cached_ = false;
  bias_memo_.clear();
  bias_memo_size_ = 0;
  bias_memo_clock_ = 0;
  bias_memo_hits_ = 0;
  bias_memo_misses_ = 0;
  last_stage_times_ = SanitizeStageTimes{};
  return Status::OK();
}

SanitizedOutput ButterflyEngine::SanitizeView(const FecView& fecs,
                                              size_t total_itemsets,
                                              Support window_size) {
  last_stage_times_ = SanitizeStageTimes{};
  const uint64_t epoch = epoch_++;
  SanitizedOutput release(config_.min_support, window_size);
  if (total_itemsets == 0) {
    if (config_.republish_cache) cache_.NextEpoch();
    release.Seal();
    return release;
  }

  auto stage_start = StageNow();
  std::vector<FecProfile>& profiles = profiles_scratch_;
  profiles.clear();
  profiles.reserve(fecs.size());
  for (const Fec* fec : fecs) {
    profiles.push_back(FecProfile{
        fec->support, fec->size(),
        MaxAdjustableBias(fec->support, config_.epsilon, noise_.variance())});
  }
  auto stage_end = StageNow();
  last_stage_times_.partition_ns += StageNs(stage_start, stage_end);

  // Bias stage: previous-window reuse, then the cross-window DP memo, then a
  // fresh optimization. All three produce identical biases for identical
  // profiles (the reuse path only diverges under a nonzero drift tolerance).
  stage_start = stage_end;
  std::vector<double> biases;
  last_biases_were_cached_ = false;
  if (config_.cache_bias_settings && TryReuseBiases(profiles, &biases)) {
    last_biases_were_cached_ = true;
    last_stage_times_.bias_cache_hit = true;
  } else if (MemoLookup(profiles, &biases)) {
    last_biases_were_cached_ = true;
    last_stage_times_.bias_memo_hit = true;
    if (config_.cache_bias_settings) {
      cached_profiles_ = profiles;
      cached_biases_ = biases;
    }
  } else {
    biases = ComputeBiases(profiles);
    MemoInsert(profiles, biases);
    if (config_.cache_bias_settings) {
      cached_profiles_ = profiles;
      cached_biases_ = biases;
    }
  }
  stage_end = StageNow();
  last_stage_times_.bias_ns = StageNs(stage_start, stage_end);

  const bool per_itemset_noise = config_.scheme == ButterflyScheme::kBasic;
  const double variance = noise_.variance();

  // Flatten the FEC membership so the itemset work partitions evenly across
  // threads regardless of FEC size skew.
  stage_start = stage_end;
  size_t total = 0;
  for (const Fec* fec : fecs) total += fec->size();
  assert(total == total_itemsets);
  std::vector<std::pair<uint32_t, uint32_t>>& flat = flat_scratch_;
  flat.clear();
  flat.reserve(total);
  for (size_t i = 0; i < fecs.size(); ++i) {
    for (size_t m = 0; m < fecs[i]->members.size(); ++m) {
      flat.emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(m));
    }
  }

  // Phase 1 (parallel): per-itemset value computation into disjoint slots.
  // Safe concurrently: cache_.Lookup only reads the map structure and stamps
  // last_seen on the hit slot, and each released itemset is unique, so no
  // two threads touch the same slot. Every miss derives its noise from its
  // own counter-based stream — no shared generator state. Members of one FEC
  // under the optimized schemes key the same stream and hence recompute the
  // identical shared draw.
  std::vector<SanitizedItemset>& items = items_scratch_;
  items.resize(std::max(items.size(), total));
  std::vector<uint8_t>& needs_store = needs_store_scratch_;
  needs_store.assign(total, 0);
  auto sanitize_range = [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      const Fec& fec = *fecs[flat[k].first];
      const Itemset& member = fec.members[flat[k].second];
      SanitizedItemset item;
      item.itemset = member;
      item.bias = biases[flat[k].first];
      item.variance = variance;

      bool pinned = false;
      if (config_.republish_cache) {
        if (std::optional<RepublishCache::Entry> cached =
                cache_.Lookup(member, fec.support)) {
          item.sanitized_support = cached->sanitized_support;
          item.bias = cached->bias;
          item.variance = cached->variance;
          pinned = true;
        }
      }
      if (!pinned) {
        CounterRng stream =
            per_itemset_noise
                ? CounterRng(config_.seed, epoch, member.Hash())
                : CounterRng(config_.seed ^ kFecStreamDomain, epoch,
                             static_cast<uint64_t>(fec.support));
        item.sanitized_support = fec.support + noise_.Sample(item.bias, &stream);
        if (config_.republish_cache) needs_store[k] = 1;
      }
      items[k] = std::move(item);
    }
  };
  // Chunk so each participant sees a few chunks for load balance, but never
  // below a floor that keeps the atomic-cursor and wakeup overhead amortized
  // (small windows run inline — threading is pure overhead for them).
  const size_t participants = pool_ ? pool_->worker_count() + 1 : 1;
  const size_t grain = std::max<size_t>(64, total / (participants * 4));
  ParallelFor(pool_, total, grain, sanitize_range);
  stage_end = StageNow();
  last_stage_times_.noise_ns = StageNs(stage_start, stage_end);

  // Phase 2 (serial): pin the fresh draws and assemble the release in the
  // deterministic FEC order.
  stage_start = stage_end;
  for (size_t k = 0; k < total; ++k) {
    if (needs_store[k]) {
      const Fec& fec = *fecs[flat[k].first];
      cache_.Store(items[k].itemset,
                   RepublishCache::Entry{fec.support,
                                         items[k].sanitized_support,
                                         items[k].bias, items[k].variance});
    }
    release.Add(std::move(items[k]));
  }

  if (config_.republish_cache) cache_.NextEpoch();
  release.Seal();
  last_stage_times_.emit_ns = StageNs(stage_start, StageNow());
  return release;
}

}  // namespace butterfly
