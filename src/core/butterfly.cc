#include "core/butterfly.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>

namespace butterfly {

std::vector<FecProfile> BuildFecProfiles(const std::vector<Fec>& fecs,
                                         double epsilon,
                                         double noise_variance) {
  std::vector<FecProfile> profiles;
  profiles.reserve(fecs.size());
  for (const Fec& fec : fecs) {
    profiles.push_back(FecProfile{
        fec.support, fec.size(),
        MaxAdjustableBias(fec.support, epsilon, noise_variance)});
  }
  return profiles;
}

bool ButterflyEngine::TryReuseBiases(const std::vector<FecProfile>& profiles,
                                     std::vector<double>* biases) {
  if (cached_profiles_.size() != profiles.size() || profiles.empty()) {
    return false;
  }
  const Support tolerance = config_.bias_cache_tolerance;
  if (tolerance == 0) {
    // Exact structural match: the cached biases are bit-identical to what a
    // fresh optimization would produce.
    if (!(profiles == cached_profiles_)) return false;
    *biases = cached_biases_;
    return true;
  }
  for (size_t i = 0; i < profiles.size(); ++i) {
    Support drift = profiles[i].support - cached_profiles_[i].support;
    if (drift > tolerance || drift < -tolerance) return false;
  }
  // Clamp the cached biases into the new adjustable range and make sure the
  // estimators are still strictly increasing; otherwise fall back to a fresh
  // optimization.
  std::vector<double> candidate(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    candidate[i] = std::clamp(cached_biases_[i], -profiles[i].max_bias,
                              profiles[i].max_bias);
    if (i > 0) {
      double prev = static_cast<double>(profiles[i - 1].support) + candidate[i - 1];
      double cur = static_cast<double>(profiles[i].support) + candidate[i];
      if (cur <= prev) return false;
    }
  }
  *biases = std::move(candidate);
  return true;
}

Result<ButterflyEngine> ButterflyEngine::Create(const ButterflyConfig& config) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  return ButterflyEngine(config);
}

ButterflyEngine::ButterflyEngine(const ButterflyConfig& config)
    : config_(config),
      noise_(config.delta, config.vulnerable_support),
      pool_(SharedPool(ResolveThreadCount(config.threads))) {
  assert(config.Validate().ok());
}

std::vector<double> ButterflyEngine::ComputeBiases(
    const std::vector<FecProfile>& profiles) {
  switch (config_.scheme) {
    case ButterflyScheme::kBasic:
      return ZeroBiases(profiles.size());
    case ButterflyScheme::kOrderPreserving:
      return OrderPreservingBiases(profiles, noise_.alpha(),
                                   config_.order_opt);
    case ButterflyScheme::kRatioPreserving:
      return RatioPreservingBiases(profiles);
    case ButterflyScheme::kHybrid: {
      std::vector<double> order =
          OrderPreservingBiases(profiles, noise_.alpha(), config_.order_opt);
      std::vector<double> ratio = RatioPreservingBiases(profiles);
      return HybridBiases(profiles, order, ratio, config_.lambda);
    }
  }
  return ZeroBiases(profiles.size());
}

namespace {
// Domain separator keying the shared per-FEC noise streams apart from the
// per-itemset streams of the basic scheme.
constexpr uint64_t kFecStreamDomain = 0x9e3779b97f4a7c15ull;
}  // namespace

SanitizedOutput ButterflyEngine::Sanitize(const MiningOutput& frequent,
                                          Support window_size) {
  const uint64_t epoch = epoch_++;
  SanitizedOutput release(config_.min_support, window_size);
  if (frequent.empty()) {
    if (config_.republish_cache) cache_.NextEpoch();
    release.Seal();
    return release;
  }

  std::vector<Fec> fecs = PartitionIntoFecs(frequent);
  std::vector<FecProfile> profiles =
      BuildFecProfiles(fecs, config_.epsilon, noise_.variance());

  std::vector<double> biases;
  last_biases_were_cached_ = false;
  if (config_.cache_bias_settings && TryReuseBiases(profiles, &biases)) {
    last_biases_were_cached_ = true;
  } else {
    biases = ComputeBiases(profiles);
    if (config_.cache_bias_settings) {
      cached_profiles_ = profiles;
      cached_biases_ = biases;
    }
  }

  const bool per_itemset_noise = config_.scheme == ButterflyScheme::kBasic;
  const double variance = noise_.variance();

  // Flatten the FEC membership so the itemset work partitions evenly across
  // threads regardless of FEC size skew.
  const size_t total = frequent.size();
  std::vector<std::pair<uint32_t, uint32_t>> flat;
  flat.reserve(total);
  for (size_t i = 0; i < fecs.size(); ++i) {
    for (size_t m = 0; m < fecs[i].members.size(); ++m) {
      flat.emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(m));
    }
  }

  // Phase 1 (parallel): per-itemset value computation into disjoint slots.
  // Safe concurrently: cache_.Lookup only reads the map structure and stamps
  // last_seen on the hit slot, and each released itemset is unique, so no
  // two threads touch the same slot. Every miss derives its noise from its
  // own counter-based stream — no shared generator state. Members of one FEC
  // under the optimized schemes key the same stream and hence recompute the
  // identical shared draw.
  std::vector<SanitizedItemset> items(total);
  std::vector<uint8_t> needs_store(total, 0);
  auto sanitize_range = [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      const Fec& fec = fecs[flat[k].first];
      const Itemset& member = fec.members[flat[k].second];
      SanitizedItemset item;
      item.itemset = member;
      item.bias = biases[flat[k].first];
      item.variance = variance;

      bool pinned = false;
      if (config_.republish_cache) {
        if (std::optional<RepublishCache::Entry> cached =
                cache_.Lookup(member, fec.support)) {
          item.sanitized_support = cached->sanitized_support;
          item.bias = cached->bias;
          item.variance = cached->variance;
          pinned = true;
        }
      }
      if (!pinned) {
        CounterRng stream =
            per_itemset_noise
                ? CounterRng(config_.seed, epoch, member.Hash())
                : CounterRng(config_.seed ^ kFecStreamDomain, epoch,
                             static_cast<uint64_t>(fec.support));
        item.sanitized_support = fec.support + noise_.Sample(item.bias, &stream);
        if (config_.republish_cache) needs_store[k] = 1;
      }
      items[k] = std::move(item);
    }
  };
  ParallelFor(pool_, total, /*grain=*/128, sanitize_range);

  // Phase 2 (serial): pin the fresh draws and assemble the release in the
  // deterministic FEC order.
  for (size_t k = 0; k < total; ++k) {
    if (needs_store[k]) {
      const Fec& fec = fecs[flat[k].first];
      cache_.Store(items[k].itemset,
                   RepublishCache::Entry{fec.support,
                                         items[k].sanitized_support,
                                         items[k].bias, items[k].variance});
    }
    release.Add(std::move(items[k]));
  }

  if (config_.republish_cache) cache_.NextEpoch();
  release.Seal();
  return release;
}

}  // namespace butterfly
