#include "core/butterfly.h"

#include <algorithm>
#include <cassert>

namespace butterfly {

std::vector<FecProfile> BuildFecProfiles(const std::vector<Fec>& fecs,
                                         double epsilon,
                                         double noise_variance) {
  std::vector<FecProfile> profiles;
  profiles.reserve(fecs.size());
  for (const Fec& fec : fecs) {
    profiles.push_back(FecProfile{
        fec.support, fec.size(),
        MaxAdjustableBias(fec.support, epsilon, noise_variance)});
  }
  return profiles;
}

bool ButterflyEngine::TryReuseBiases(const std::vector<FecProfile>& profiles,
                                     std::vector<double>* biases) {
  if (cached_profiles_.size() != profiles.size() || profiles.empty()) {
    return false;
  }
  const Support tolerance = config_.bias_cache_tolerance;
  if (tolerance == 0) {
    // Exact structural match: the cached biases are bit-identical to what a
    // fresh optimization would produce.
    if (!(profiles == cached_profiles_)) return false;
    *biases = cached_biases_;
    return true;
  }
  for (size_t i = 0; i < profiles.size(); ++i) {
    Support drift = profiles[i].support - cached_profiles_[i].support;
    if (drift > tolerance || drift < -tolerance) return false;
  }
  // Clamp the cached biases into the new adjustable range and make sure the
  // estimators are still strictly increasing; otherwise fall back to a fresh
  // optimization.
  std::vector<double> candidate(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    candidate[i] = std::clamp(cached_biases_[i], -profiles[i].max_bias,
                              profiles[i].max_bias);
    if (i > 0) {
      double prev = static_cast<double>(profiles[i - 1].support) + candidate[i - 1];
      double cur = static_cast<double>(profiles[i].support) + candidate[i];
      if (cur <= prev) return false;
    }
  }
  *biases = std::move(candidate);
  return true;
}

Result<ButterflyEngine> ButterflyEngine::Create(const ButterflyConfig& config) {
  Status status = config.Validate();
  if (!status.ok()) return status;
  return ButterflyEngine(config);
}

ButterflyEngine::ButterflyEngine(const ButterflyConfig& config)
    : config_(config),
      noise_(config.delta, config.vulnerable_support),
      rng_(config.seed) {
  assert(config.Validate().ok());
}

std::vector<double> ButterflyEngine::ComputeBiases(
    const std::vector<FecProfile>& profiles) {
  switch (config_.scheme) {
    case ButterflyScheme::kBasic:
      return ZeroBiases(profiles.size());
    case ButterflyScheme::kOrderPreserving:
      return OrderPreservingBiases(profiles, noise_.alpha(),
                                   config_.order_opt);
    case ButterflyScheme::kRatioPreserving:
      return RatioPreservingBiases(profiles);
    case ButterflyScheme::kHybrid: {
      std::vector<double> order =
          OrderPreservingBiases(profiles, noise_.alpha(), config_.order_opt);
      std::vector<double> ratio = RatioPreservingBiases(profiles);
      return HybridBiases(profiles, order, ratio, config_.lambda);
    }
  }
  return ZeroBiases(profiles.size());
}

SanitizedOutput ButterflyEngine::Sanitize(const MiningOutput& frequent,
                                          Support window_size) {
  SanitizedOutput release(config_.min_support, window_size);
  if (frequent.empty()) {
    if (config_.republish_cache) cache_.NextEpoch();
    release.Seal();
    return release;
  }

  std::vector<Fec> fecs = PartitionIntoFecs(frequent);
  std::vector<FecProfile> profiles =
      BuildFecProfiles(fecs, config_.epsilon, noise_.variance());

  std::vector<double> biases;
  last_biases_were_cached_ = false;
  if (config_.cache_bias_settings && TryReuseBiases(profiles, &biases)) {
    last_biases_were_cached_ = true;
  } else {
    biases = ComputeBiases(profiles);
    if (config_.cache_bias_settings) {
      cached_profiles_ = profiles;
      cached_biases_ = biases;
    }
  }

  const bool per_itemset_noise = config_.scheme == ButterflyScheme::kBasic;
  const double variance = noise_.variance();

  for (size_t i = 0; i < fecs.size(); ++i) {
    const Fec& fec = fecs[i];
    const double bias = biases[i];

    // Optimized schemes share one draw per FEC so within-class equality
    // survives; the draw is made lazily, only if some member misses the
    // republish cache.
    std::optional<Support> fec_draw;
    auto fresh_value = [&]() -> Support {
      if (per_itemset_noise) {
        return fec.support + noise_.Sample(bias, &rng_);
      }
      if (!fec_draw) fec_draw = fec.support + noise_.Sample(bias, &rng_);
      return *fec_draw;
    };

    for (const Itemset& member : fec.members) {
      SanitizedItemset item;
      item.itemset = member;
      item.bias = bias;
      item.variance = variance;

      if (config_.republish_cache) {
        std::optional<RepublishCache::Entry> cached =
            cache_.Lookup(member, fec.support);
        if (cached) {
          item.sanitized_support = cached->sanitized_support;
          item.bias = cached->bias;
          item.variance = cached->variance;
          release.Add(std::move(item));
          continue;
        }
      }

      item.sanitized_support = fresh_value();
      if (config_.republish_cache) {
        cache_.Store(member,
                     RepublishCache::Entry{fec.support, item.sanitized_support,
                                           item.bias, item.variance});
      }
      release.Add(std::move(item));
    }
  }

  if (config_.republish_cache) cache_.NextEpoch();
  release.Seal();
  return release;
}

}  // namespace butterfly
