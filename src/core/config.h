/// \file config.h
/// \brief Butterfly configuration: the (ε, δ) requirement pair, the scheme
/// variant, and the optimizer knobs.

#ifndef BUTTERFLY_CORE_CONFIG_H_
#define BUTTERFLY_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"

namespace butterfly {

/// Which bias-setting scheme sanitization uses (§V-C / §VI of the paper).
enum class ButterflyScheme {
  /// β = 0 everywhere, per-itemset independent noise; the minimum-ppr
  /// configuration with the lowest precision loss.
  kBasic,
  /// Per-FEC bias from the order-preserving dynamic program (Algorithm 1).
  kOrderPreserving,
  /// Per-FEC bias proportional to support (Algorithm 2).
  kRatioPreserving,
  /// β = λ·β_op + (1 − λ)·β_rp.
  kHybrid,
};

std::string SchemeName(ButterflyScheme scheme);

/// Which release-policy backend sanitizes the mining output before release
/// (see policy/release_policy.h). Butterfly — the paper's bias/noise scheme —
/// is the reference backend; the others are differentially private
/// alternatives answering the same per-window query, for the utility-vs-
/// breach comparison the paper could not run. The value is serialized as one
/// byte in the CONF checkpoint section, so the enumerators are pinned.
enum class ReleasePolicyKind : uint8_t {
  /// The paper's pipeline: FEC partition + bias DP + discrete-uniform noise
  /// + republish cache. Knobs: epsilon/delta/scheme/lambda.
  kButterfly = 0,
  /// PrivBasis-style private frequent-itemset release: a noisy top-B item
  /// basis, then Laplace supports for the basis-covered itemsets.
  kPrivBasis = 1,
  /// Continual-release frequency estimation: binary-tree (dyadic) mechanism
  /// over the sliding window's stream interval, node noise reused across
  /// windows so the per-element budget stays epsilon for the whole stream.
  kContinual = 2,
  /// Private heavy-hitter release: one-shot Gumbel top-k selection plus
  /// Laplace support estimates for the selected itemsets.
  kHeavyHitter = 3,
};

/// Canonical flag spelling of a policy kind: "butterfly", "privbasis",
/// "continual", "heavyhitter". The shared vocabulary of --policy= across
/// butterfly_cli, attack_cli, and the benches.
std::string ReleasePolicyName(ReleasePolicyKind kind);

/// Parses a --policy= value; nullopt on unknown names.
std::optional<ReleasePolicyKind> ParseReleasePolicyKind(std::string_view name);

/// Knobs of the order-preserving dynamic program.
struct OrderOptConfig {
  /// DP window depth γ: each FEC's bias interacts with its γ predecessors.
  size_t gamma = 2;
  /// Budget on DP states; per-FEC candidate-grid size is derived from it.
  size_t max_states = 20000;
  /// Hard cap on bias candidates per FEC.
  size_t max_candidates = 21;
};

/// Full engine configuration.
struct ButterflyConfig {
  /// Precision requirement ε: upper bound on every frequent itemset's
  /// relative mean squared error (σ² + β²)/T² ≤ ε (since T ≥ C).
  double epsilon = 0.016;
  /// Privacy requirement δ: lower bound on every vulnerable pattern's
  /// relative estimation error 2σ²/K² ≥ δ.
  double delta = 0.4;

  Support min_support = 25;        ///< C
  Support vulnerable_support = 5;  ///< K

  ButterflyScheme scheme = ButterflyScheme::kBasic;
  /// Hybrid blend weight λ ∈ [0, 1]; 1 = pure order-preserving, 0 = pure
  /// ratio-preserving. Only read when scheme == kHybrid.
  double lambda = 0.4;

  OrderOptConfig order_opt;

  /// Re-publish the cached sanitized support while an itemset's true support
  /// is unchanged across windows (defense against averaging, Prior
  /// Knowledge 2). On by default.
  bool republish_cache = true;

  /// Reuse the previous window's bias settings when the FEC structure
  /// (supports and member counts) is unchanged — the "incremental version"
  /// the paper sketches as future work. With zero tolerance this is purely a
  /// latency optimization: the produced biases are identical to a fresh
  /// optimization.
  bool cache_bias_settings = true;

  /// Maximum per-FEC support drift under which cached biases may still be
  /// reused (clamped into the new maximum adjustable bias and re-checked for
  /// estimator monotonicity). 0 = exact structural match only. Positive
  /// values trade a little order-preservation optimality for skipping the
  /// dynamic program on most slides; the ablation_incremental benchmark
  /// quantifies both sides.
  Support bias_cache_tolerance = 0;

  /// Capacity (entries) of the cross-window bias-DP memo: optimized bias
  /// settings keyed on the exact FEC support-profile vector, so windows
  /// whose profile repeats skip the Algorithm 1 DP entirely and reuse its
  /// bit-identical result. Profiles repeat heavily under sliding windows —
  /// the republish-cache insight applied to the optimizer. 0 disables the
  /// memo; it only engages for the order-preserving and hybrid schemes.
  size_t bias_memo_capacity = 128;

  /// Store the miner's window index as hybrid array/bitmap/run containers
  /// instead of dense per-item bitmaps (see stream/window_bitmap_index.h).
  /// Mined output and release logs are bit-identical either way; hybrid
  /// collapses index memory on large sparse alphabets and requires the
  /// window capacity H <= 65536.
  bool hybrid_index = false;

  /// Which release-policy backend the engine publishes through. Butterfly
  /// reads the (epsilon, delta, scheme, ...) knobs above; the DP backends
  /// read policy_epsilon / policy_top_k instead. Checkpointed (one byte in
  /// the CONF section) and bit-compared on restore.
  ReleasePolicyKind policy = ReleasePolicyKind::kButterfly;

  /// Per-window differential-privacy budget of the DP backends (ignored by
  /// Butterfly, whose budget is the epsilon/delta pair). The continual
  /// backend's budget is per stream element over the whole stream — see
  /// DESIGN.md §15 for each backend's accounting.
  double policy_epsilon = 1.0;

  /// Selection width of the selective DP backends: the PrivBasis item-basis
  /// size B and the heavy-hitter release size k. Ignored by Butterfly and
  /// the continual estimator.
  size_t policy_top_k = 32;

  uint64_t seed = 0x42u;

  /// Total parallelism of the release path (caller + worker threads).
  /// 1 = serial; 0 = auto (hardware concurrency). The release content is
  /// bit-identical for every value — noise is drawn from counter-based
  /// per-itemset streams, not from a shared sequential generator — so this
  /// is purely a latency knob.
  int64_t threads = 1;

  /// The precision-privacy ratio ε/δ.
  double ppr() const { return epsilon / delta; }

  /// The minimum feasible ppr K²/(2C²) for these thresholds.
  double MinPpr() const {
    double k = static_cast<double>(vulnerable_support);
    double c = static_cast<double>(min_support);
    return (k * k) / (2.0 * c * c);
  }

  /// Checks parameter sanity and the ε/δ ≥ K²/(2C²) compatibility condition
  /// (Inequations 1 and 2 admit a common σ² only above the minimum ppr).
  Status Validate() const;
};

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_CONFIG_H_
