#include "core/rule_release.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace butterfly {

std::string SanitizedRule::ToString() const {
  std::ostringstream out;
  out << antecedent.ToString() << " => " << consequent.ToString()
      << " (confidence " << released_confidence << " in [" << confidence_lo
      << ", " << confidence_hi << "])";
  return out.str();
}

namespace {

// Sound support envelope for one released value: the bias is secret, so the
// true support can sit anywhere within ±α of the released value.
Interval Envelope(Support released, int64_t alpha) {
  return Interval(released - alpha, released + alpha).ClampNonNegative();
}

void VisitAntecedents(const Itemset& itemset, size_t start,
                      std::vector<Item>* prefix,
                      const std::function<void(const Itemset&)>& visit) {
  if (!prefix->empty() && prefix->size() < itemset.size()) {
    visit(Itemset::FromSorted(*prefix));
  }
  for (size_t i = start; i < itemset.size(); ++i) {
    prefix->push_back(itemset[i]);
    VisitAntecedents(itemset, i + 1, prefix, visit);
    prefix->pop_back();
  }
}

}  // namespace

std::vector<SanitizedRule> GenerateSanitizedRules(
    const SanitizedOutput& release, const NoiseModel& noise,
    double min_confidence) {
  std::vector<SanitizedRule> rules;
  const int64_t alpha = noise.alpha();
  std::vector<Item> prefix;

  for (const SanitizedItemset& whole : release.items()) {
    if (whole.itemset.size() < 2) continue;
    VisitAntecedents(whole.itemset, 0, &prefix, [&](const Itemset& antecedent) {
      std::optional<Support> ant = release.SanitizedSupportOf(antecedent);
      if (!ant || *ant <= 0) return;
      double confidence = static_cast<double>(whole.sanitized_support) /
                          static_cast<double>(*ant);
      if (confidence + 1e-12 < min_confidence) return;

      SanitizedRule rule;
      rule.antecedent = antecedent;
      rule.consequent = whole.itemset.Minus(antecedent);
      rule.released_support = whole.sanitized_support;
      rule.released_confidence = confidence;

      Interval whole_env = Envelope(whole.sanitized_support, alpha);
      Interval ant_env = Envelope(*ant, alpha);
      // Confidence = T(whole)/T(ant) with T(whole) <= T(ant) always; the
      // sound bounds take the extreme ratios, capped into [0, 1].
      if (ant_env.hi > 0) {
        rule.confidence_lo = std::clamp(
            static_cast<double>(whole_env.lo) /
                static_cast<double>(ant_env.hi),
            0.0, 1.0);
      }
      if (ant_env.lo > 0) {
        rule.confidence_hi = std::clamp(
            static_cast<double>(whole_env.hi) /
                static_cast<double>(ant_env.lo),
            0.0, 1.0);
      } else {
        rule.confidence_hi = 1.0;
      }
      rules.push_back(std::move(rule));
    });
  }

  std::sort(rules.begin(), rules.end(),
            [](const SanitizedRule& a, const SanitizedRule& b) {
              if (a.released_confidence != b.released_confidence) {
                return a.released_confidence > b.released_confidence;
              }
              if (a.antecedent != b.antecedent) return a.antecedent < b.antecedent;
              return a.consequent < b.consequent;
            });
  return rules;
}

}  // namespace butterfly
