/// \file republish_cache.h
/// \brief Defense against averaging over consecutive releases (Prior
/// Knowledge 2, §V-C.2 of the paper).
///
/// Independent re-perturbation of an unchanged support would let an
/// adversary average consecutive releases and shrink the noise by the law of
/// large numbers. The cache therefore pins each itemset's sanitized value:
/// as long as its true support stays the same from window to window, the
/// very same sanitized support is republished, so repeated observation adds
/// zero information. A changed true support invalidates the entry and a
/// fresh draw is made.

#ifndef BUTTERFLY_CORE_REPUBLISH_CACHE_H_
#define BUTTERFLY_CORE_REPUBLISH_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/itemset.h"
#include "common/status.h"
#include "common/types.h"

namespace butterfly {

namespace persist {
class CheckpointWriter;
class CheckpointReader;
}  // namespace persist

class RepublishCache {
 public:
  struct Entry {
    Support true_support = 0;
    Support sanitized_support = 0;
    double bias = 0;
    double variance = 0;
  };

  /// \param max_idle_epochs entries unseen for this many windows are pruned.
  explicit RepublishCache(uint64_t max_idle_epochs = 4)
      : max_idle_epochs_(max_idle_epochs) {}

  /// The pinned sanitized value for \p itemset, if its true support still
  /// equals \p true_support. Marks the entry as seen this epoch.
  ///
  /// Concurrency: Lookup never mutates the map structure — it only stamps
  /// last_seen on the hit slot — so concurrent Lookups on DISTINCT itemsets
  /// are safe (the parallel Sanitize relies on this; released itemsets are
  /// unique). Store and NextEpoch must not run concurrently with anything.
  std::optional<Entry> Lookup(const Itemset& itemset, Support true_support);

  /// Pins a fresh sanitized value.
  void Store(const Itemset& itemset, const Entry& entry);

  /// Advances the window epoch and prunes long-unseen entries.
  void NextEpoch();

  /// Drops every pinned value (audit-driven redraw support).
  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }

  /// Serializes every pinned entry (sorted by itemset for deterministic
  /// bytes) plus the epoch clock. The cache is ESSENTIAL checkpoint state:
  /// losing a pin re-perturbs an unchanged support after restart, which is
  /// exactly the averaging leak (Prior Knowledge 2) the cache defends
  /// against.
  void Checkpoint(persist::CheckpointWriter* writer) const;

  /// Restores from a checkpoint section, replacing the current contents.
  Status Restore(persist::CheckpointReader* reader);

 private:
  struct Slot {
    Entry entry;
    uint64_t last_seen = 0;
  };

  uint64_t max_idle_epochs_;
  uint64_t epoch_ = 0;
  std::unordered_map<Itemset, Slot, ItemsetHash> entries_;
};

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_REPUBLISH_CACHE_H_
