/// \file rule_release.h
/// \brief Association rules computed from a *sanitized* release.
///
/// Rule confidence is the utility the ratio-preserving scheme protects
/// (§VI-B motivates it by exactly this use). This module derives rules from
/// released supports and, because the consumer knows the release is
/// perturbed, attaches a SOUND confidence interval: with the noise region
/// public, each support lies in an interval, and the confidence lies in the
/// interval ratio. Downstream decisions can then be made against the bounds
/// rather than the point value.

#ifndef BUTTERFLY_CORE_RULE_RELEASE_H_
#define BUTTERFLY_CORE_RULE_RELEASE_H_

#include <string>
#include <vector>

#include "core/noise.h"
#include "core/sanitized_output.h"

namespace butterfly {

/// One rule as reconstructed from a sanitized release.
struct SanitizedRule {
  Itemset antecedent;
  Itemset consequent;
  /// Point estimates from the released supports.
  Support released_support = 0;
  double released_confidence = 0;
  /// Sound bounds given the public noise region length: the true confidence
  /// lies within [confidence_lo, confidence_hi].
  double confidence_lo = 0;
  double confidence_hi = 1;

  std::string ToString() const;
};

/// Generates every rule with released confidence >= \p min_confidence from a
/// sanitized release, with sound confidence bounds computed from the noise
/// region length \p noise (biases are secret, so the envelope per released
/// support is ±α around the released value, clamped at 0).
std::vector<SanitizedRule> GenerateSanitizedRules(
    const SanitizedOutput& release, const NoiseModel& noise,
    double min_confidence);

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_RULE_RELEASE_H_
