/// \file noise.h
/// \brief The Butterfly noise model: discrete uniform perturbation whose
/// variance is set by the privacy requirement δ and whose center (bias) is
/// the utility-tuning knob.
///
/// For privacy requirement δ and vulnerable support K, the scheme needs
/// σ² ≥ δK²/2 (Inequation 2 of the paper). A discrete uniform distribution
/// over an integer interval of length α has σ² = ((α+1)² − 1)/12, so the
/// paper sets α = √(1 + 6δK²) − 1; we take the ceiling so the realized
/// variance never undershoots the requirement.

#ifndef BUTTERFLY_CORE_NOISE_H_
#define BUTTERFLY_CORE_NOISE_H_

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace butterfly {

/// The per-release noise generator shared by all Butterfly schemes.
class NoiseModel {
 public:
  /// \param delta the privacy requirement (P2 lower bound), > 0.
  /// \param vulnerable_support the threshold K, > 0.
  NoiseModel(double delta, Support vulnerable_support);

  /// The uncertainty-region length α (an integer; the noise support holds
  /// α + 1 values).
  int64_t alpha() const { return alpha_; }

  /// The realized noise variance ((α+1)² − 1)/12 ≥ δK²/2.
  double variance() const { return variance_; }

  /// The noise distribution centered (as closely as integer endpoints allow)
  /// at \p bias: integers in [round(bias − α/2), round(bias − α/2) + α].
  DiscreteUniform Centered(double bias) const;

  /// Draws one noise value with the given bias, from any source exposing
  /// UniformInt (Rng for sequential use, CounterRng for the keyed per-itemset
  /// streams of the parallel release path).
  template <typename RngT>
  int64_t Sample(double bias, RngT* rng) const {
    return Centered(bias).Sample(rng);
  }

 private:
  int64_t alpha_;
  double variance_;
};

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_NOISE_H_
