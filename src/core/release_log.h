/// \file release_log.h
/// \brief Serialization of sanitized releases (and raw outputs) to a simple
/// line-oriented text format, so downstream consumers — dashboards, offline
/// auditors, the CLI — can persist and replay a stream of releases.
///
/// Format (one release per block):
///   #release <window_label> <window_size> <min_support> <num_items>
///   <item item item ...> <sanitized_support>
///   ...
///   (blank line terminates the block)
///
/// The bias/variance metadata is intentionally NOT serialized: the log is
/// the public artifact, and publishing per-itemset bias would hand the
/// adversary the exact centers. (Scheme-level parameters are assumed public
/// per Kerckhoffs; per-release realized values are not.)

#ifndef BUTTERFLY_CORE_RELEASE_LOG_H_
#define BUTTERFLY_CORE_RELEASE_LOG_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/sanitized_output.h"

namespace butterfly {

/// One deserialized release block: the public view of a window's release.
struct LoggedRelease {
  std::string label;
  Support window_size = 0;
  Support min_support = 0;
  std::vector<std::pair<Itemset, Support>> items;
};

/// Appends one release block to \p out.
Status WriteRelease(std::ostream* out, const std::string& label,
                    const SanitizedOutput& release);

/// Parses every release block from \p in.
Result<std::vector<LoggedRelease>> ReadReleases(std::istream* in);

/// File-based conveniences.
Status AppendReleaseToFile(const std::string& path, const std::string& label,
                           const SanitizedOutput& release);
Result<std::vector<LoggedRelease>> ReadReleasesFromFile(
    const std::string& path);

/// Crash recovery for an append-mode release log: scans \p path and
/// truncates a torn trailing block (a header whose declared item count never
/// completed, or a block missing its terminating blank line) so the log ends
/// on a whole release and appending can resume. A missing file is fine (a
/// fresh log). Returns the number of complete releases kept. Used by the
/// checkpoint-restore path: the engine snapshot restores internal state,
/// this restores the public artifact to a consistent prefix.
Result<size_t> RecoverReleaseLog(const std::string& path);

}  // namespace butterfly

#endif  // BUTTERFLY_CORE_RELEASE_LOG_H_
