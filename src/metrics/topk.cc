#include "metrics/topk.h"

#include <algorithm>
#include <unordered_map>

namespace butterfly {

namespace {

std::vector<RankedItemset> RankAndTruncate(std::vector<RankedItemset> entries,
                                           size_t k) {
  std::sort(entries.begin(), entries.end(),
            [](const RankedItemset& a, const RankedItemset& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.itemset < b.itemset;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

}  // namespace

std::vector<RankedItemset> TopK(const MiningOutput& output, size_t k,
                                size_t min_size) {
  std::vector<RankedItemset> entries;
  for (const FrequentItemset& f : output.itemsets()) {
    if (f.itemset.size() >= min_size) {
      entries.push_back(RankedItemset{f.itemset, f.support});
    }
  }
  return RankAndTruncate(std::move(entries), k);
}

std::vector<RankedItemset> TopK(const SanitizedOutput& release, size_t k,
                                size_t min_size) {
  std::vector<RankedItemset> entries;
  for (const SanitizedItemset& item : release.items()) {
    if (item.itemset.size() >= min_size) {
      entries.push_back(RankedItemset{item.itemset, item.sanitized_support});
    }
  }
  return RankAndTruncate(std::move(entries), k);
}

double TopKOverlap(const std::vector<RankedItemset>& truth,
                   const std::vector<RankedItemset>& released, size_t k) {
  if (k == 0) return 1.0;
  size_t hits = 0;
  for (const RankedItemset& t : truth) {
    for (const RankedItemset& r : released) {
      if (t.itemset == r.itemset) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RankingKendallDistance(const std::vector<RankedItemset>& truth,
                              const std::vector<RankedItemset>& released) {
  // Positions of common itemsets in both rankings.
  std::unordered_map<Itemset, size_t, ItemsetHash> released_pos;
  for (size_t i = 0; i < released.size(); ++i) {
    released_pos.emplace(released[i].itemset, i);
  }
  std::vector<std::pair<size_t, size_t>> common;  // (truth pos, released pos)
  for (size_t i = 0; i < truth.size(); ++i) {
    auto it = released_pos.find(truth[i].itemset);
    if (it != released_pos.end()) common.emplace_back(i, it->second);
  }
  if (common.size() < 2) return 0.0;

  size_t discordant = 0;
  size_t pairs = 0;
  for (size_t i = 0; i < common.size(); ++i) {
    for (size_t j = i + 1; j < common.size(); ++j) {
      ++pairs;
      // truth order is by construction common[i].first < common[j].first.
      if (common[i].second > common[j].second) ++discordant;
    }
  }
  return static_cast<double>(discordant) / static_cast<double>(pairs);
}

}  // namespace butterfly
