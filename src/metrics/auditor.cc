#include "metrics/auditor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "inference/breach_finder.h"
#include "metrics/sanitized_attack.h"

namespace butterfly {

AuditReport AuditRelease(const MiningOutput& raw,
                         const SanitizedOutput& release,
                         const ButterflyConfig& config,
                         const MiningOutput* previous_raw,
                         const SanitizedOutput* previous_release) {
  AuditReport report;
  NoiseModel noise(config.delta, config.vulnerable_support);

  // 1. Completeness: same itemset sets on both sides.
  if (release.size() != raw.size()) {
    std::ostringstream msg;
    msg << "release has " << release.size() << " itemsets, raw has "
        << raw.size();
    report.Violate(msg.str());
  }
  for (const FrequentItemset& f : raw.itemsets()) {
    if (!release.SanitizedSupportOf(f.itemset)) {
      report.Violate("raw itemset " + f.itemset.ToString() +
                     " missing from the release");
    }
  }

  // 2. Precision: region containment and the ε budget, per itemset.
  const double c = static_cast<double>(config.min_support);
  for (const SanitizedItemset& item : release.items()) {
    std::optional<Support> truth = raw.SupportOf(item.itemset);
    if (!truth) {
      report.Violate("released itemset " + item.itemset.ToString() +
                     " absent from the raw output");
      continue;
    }
    DiscreteUniform region = noise.Centered(item.bias);
    Support residual = item.sanitized_support - *truth;
    if (residual < region.lo() || residual > region.hi()) {
      std::ostringstream msg;
      msg << item.itemset.ToString() << ": sanitized " << item.sanitized_support
          << " outside the uncertainty region around " << *truth;
      report.Violate(msg.str());
    }
    if (item.bias * item.bias + item.variance >
        config.epsilon * static_cast<double>(*truth) *
                static_cast<double>(*truth) +
            1e-6) {
      report.Violate(item.itemset.ToString() +
                     ": bias/variance metadata exceeds the epsilon budget");
    }
    (void)c;
  }

  // 3. Privacy: the sound interval attack must pin nothing down.
  AttackConfig attack;
  attack.vulnerable_support = config.vulnerable_support;
  std::vector<InferredPattern> breaches = FindIntraWindowBreaches(
      raw, release.window_size(), attack);
  report.vulnerable_patterns = breaches.size();
  SanitizedAttackReport interval_report =
      AttackSanitizedRelease(release, noise, breaches);
  report.avg_adversary_interval_width =
      interval_report.avg_interval_width;
  if (interval_report.residual_breaches > 0) {
    std::ostringstream msg;
    msg << interval_report.residual_breaches
        << " vulnerable pattern(s) remain provably pinned through the release";
    report.Violate(msg.str());
  }

  // 4. Republish consistency against the previous release.
  if (previous_raw && previous_release) {
    for (const SanitizedItemset& item : release.items()) {
      std::optional<Support> truth = raw.SupportOf(item.itemset);
      std::optional<Support> prev_truth = previous_raw->SupportOf(item.itemset);
      const SanitizedItemset* prev_item =
          previous_release->Find(item.itemset);
      if (!truth || !prev_truth || !prev_item) continue;
      if (*truth == *prev_truth &&
          item.sanitized_support != prev_item->sanitized_support) {
        report.Violate(item.itemset.ToString() +
                       ": unchanged support re-perturbed across releases "
                       "(averaging exposure)");
      }
    }
  }

  return report;
}

SanitizedOutput SanitizeUntilClean(ButterflyEngine* engine,
                                   const MiningOutput& raw,
                                   Support window_size, size_t max_attempts,
                                   AuditReport* report) {
  SanitizedOutput release;
  for (size_t attempt = 0; attempt < std::max<size_t>(max_attempts, 1);
       ++attempt) {
    if (attempt > 0) engine->ForgetPinnedValues();
    release = engine->Sanitize(raw, window_size);
    *report = AuditRelease(raw, release, engine->config());
    if (report->passed) break;
  }
  return release;
}

}  // namespace butterfly
