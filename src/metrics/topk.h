/// \file topk.h
/// \brief Top-k queries over a window's (raw or sanitized) output.
///
/// "Querying the top-ten popular purchase patterns" is the paper's flagship
/// example of order-dependent utility (§VI-A). These helpers answer top-k
/// from either side of the sanitizer and measure how well a released ranking
/// tracks the true one — the application-level view of ropp.

#ifndef BUTTERFLY_METRICS_TOPK_H_
#define BUTTERFLY_METRICS_TOPK_H_

#include <cstddef>
#include <vector>

#include "core/sanitized_output.h"
#include "mining/mining_result.h"

namespace butterfly {

/// One ranking entry.
struct RankedItemset {
  Itemset itemset;
  Support support = 0;

  bool operator==(const RankedItemset& other) const = default;
};

/// The k highest-support itemsets with at least \p min_size items, ordered
/// by descending support (ties broken lexicographically, so rankings are
/// deterministic and comparable).
std::vector<RankedItemset> TopK(const MiningOutput& output, size_t k,
                                size_t min_size = 1);
std::vector<RankedItemset> TopK(const SanitizedOutput& release, size_t k,
                                size_t min_size = 1);

/// |true top-k ∩ released top-k| / k — the fraction of the true ranking the
/// released ranking retains (1.0 when k exceeds the universe and both sides
/// agree). Returns 1.0 for k = 0.
double TopKOverlap(const std::vector<RankedItemset>& truth,
                   const std::vector<RankedItemset>& released, size_t k);

/// Normalized Kendall-tau distance between the two rankings restricted to
/// their common itemsets: the fraction of common pairs ordered differently.
/// 0 = identical order, 1 = fully reversed; 0 when fewer than two common
/// itemsets.
double RankingKendallDistance(const std::vector<RankedItemset>& truth,
                              const std::vector<RankedItemset>& released);

}  // namespace butterfly

#endif  // BUTTERFLY_METRICS_TOPK_H_
