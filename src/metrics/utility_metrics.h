/// \file utility_metrics.h
/// \brief The paper's output-utility measures (§VII-B): average precision
/// degradation (avg_pred), rate of order-preserved pairs (ropp) and rate of
/// ratio-preserved pairs (rrpp).

#ifndef BUTTERFLY_METRICS_UTILITY_METRICS_H_
#define BUTTERFLY_METRICS_UTILITY_METRICS_H_

#include "core/sanitized_output.h"
#include "mining/mining_result.h"

namespace butterfly {

/// avg_pred = Σ_I (T̃(I) − T(I))² / T(I)² / |I| over the released itemsets.
/// Returns 0 on an empty release.
double AvgPred(const MiningOutput& truth, const SanitizedOutput& release);

/// ropp: over all unordered pairs {I, J} of released itemsets, the fraction
/// whose order survived sanitization: T̃(I) ≤ T̃(J) for pairs with
/// T(I) < T(J), and T̃(I) == T̃(J) for tied pairs (ties are exactly the
/// structure frequency equivalence classes exist to preserve).
/// Returns 1 when there are fewer than two itemsets.
double Ropp(const MiningOutput& truth, const SanitizedOutput& release);

/// rrpp: over the same pairs, the fraction with
/// k·T(I)/T(J) ≤ T̃(I)/T̃(J) ≤ (1/k)·T(I)/T(J); k defaults to the paper's
/// experimental setting 0.95.
double Rrpp(const MiningOutput& truth, const SanitizedOutput& release,
            double k = 0.95);

}  // namespace butterfly

#endif  // BUTTERFLY_METRICS_UTILITY_METRICS_H_
