/// \file privacy_metrics.h
/// \brief The paper's privacy measure (§VII-B): average privacy guarantee
/// (avg_prig) of the hard vulnerable patterns inferable from a window.

#ifndef BUTTERFLY_METRICS_PRIVACY_METRICS_H_
#define BUTTERFLY_METRICS_PRIVACY_METRICS_H_

#include <vector>

#include "core/sanitized_output.h"
#include "inference/breach_finder.h"

namespace butterfly {

/// The outcome of attacking one sanitized release.
struct PrivacyEvaluation {
  /// avg_prig = Σ_p (T(p) − T̂(p))² / T(p)² / |Phv| where T̂(p) is the
  /// adversary's best (bias-corrected inclusion-exclusion) estimate through
  /// the sanitized supports.
  double avg_prig = 0.0;
  /// |Phv|: hard vulnerable patterns that were inferable from the clear
  /// output and re-estimated through the release.
  size_t evaluated_patterns = 0;
  /// Patterns that could not be re-estimated because some lattice node
  /// vanished from the sanitized release (counted as fully protected, not
  /// averaged into avg_prig).
  size_t unestimable_patterns = 0;
};

/// Replays the adversary against a sanitized release. \p ground_truth_breaches
/// are the hard vulnerable patterns (with their true supports) that the
/// *unprotected* output leaks — i.e. FindIntraWindowBreaches on the raw
/// output; the evaluation measures how far the adversary's estimate through
/// the sanitized release lands from those true supports.
PrivacyEvaluation EvaluatePrivacy(
    const std::vector<InferredPattern>& ground_truth_breaches,
    const SanitizedOutput& release);

/// Knowledge points (Prior Knowledge 3): the adversary knows the EXACT
/// support of some itemsets (published statistics, top-k leaks, values near
/// C). Those lattice nodes contribute zero error to the estimate, shrinking
/// the attacked pattern's protection exactly as Definition 4 predicts when
/// σ²(X) is replaced by the smaller estimation error.
PrivacyEvaluation EvaluatePrivacyWithKnowledgePoints(
    const std::vector<InferredPattern>& ground_truth_breaches,
    const SanitizedOutput& release,
    const std::unordered_map<Itemset, Support, ItemsetHash>& knowledge_points);

/// The averaging attack (Prior Knowledge 2): given the releases of several
/// consecutive windows over the SAME true output, the adversary averages the
/// bias-corrected observations per itemset before deriving. With independent
/// re-perturbation the error shrinks like 1/n; with the republish cache the
/// releases are identical and averaging gains nothing.
PrivacyEvaluation EvaluateAveragingAttack(
    const std::vector<InferredPattern>& ground_truth_breaches,
    const std::vector<SanitizedOutput>& releases);

}  // namespace butterfly

#endif  // BUTTERFLY_METRICS_PRIVACY_METRICS_H_
