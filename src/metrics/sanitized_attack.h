/// \file sanitized_attack.h
/// \brief The adversary's best *sound* attack against a sanitized release:
/// interval reasoning under Kerckhoffs assumptions.
///
/// The point-estimate evaluation (EvaluatePrivacy) measures how far the
/// adversary's expected-value guess lands. This module measures something
/// stronger: what the adversary can PROVE. Knowing the full noise design
/// (region length α and each itemset's bias — Kerckhoffs's principle), every
/// released value T̃(X) pins the true support only to an interval of width
/// α; propagating those intervals through the inclusion-exclusion system
/// (TightenIntervals) and deriving pattern intervals shows whether any hard
/// vulnerable pattern remains *provably* pinned down. Under Butterfly none
/// should be: that is the hard guarantee, complementary to the statistical
/// avg_prig floor.

#ifndef BUTTERFLY_METRICS_SANITIZED_ATTACK_H_
#define BUTTERFLY_METRICS_SANITIZED_ATTACK_H_

#include <optional>

#include "core/noise.h"
#include "core/sanitized_output.h"
#include "inference/breach_finder.h"
#include "inference/interval_tightening.h"

namespace butterfly {

/// The interval knowledge a Kerckhoffs adversary extracts from a release:
/// for each released X, T(X) ∈ [T̃(X) − u_X, T̃(X) − l_X] where [l_X, u_X] is
/// the noise support centered at the itemset's bias; plus the exact window
/// size for the empty itemset.
IntervalMap IntervalKnowledgeFromRelease(const SanitizedOutput& release,
                                         const NoiseModel& noise);

/// Sound bounds on T(p) for p = I·¬(J\I) by interval arithmetic over the
/// lattice X_I^J. nullopt if any lattice node is unknown.
std::optional<Interval> DerivePatternInterval(const IntervalMap& knowledge,
                                              const Pattern& pattern);

/// Outcome of the interval attack on one release.
struct SanitizedAttackReport {
  size_t patterns_examined = 0;
  /// Patterns whose interval is a single point in (0, K] — residual provable
  /// breaches. Butterfly's design goal is to keep this at zero.
  size_t residual_breaches = 0;
  /// Patterns whose interval still allows support 0 ("the pattern may not
  /// exist at all") — the zero-indistinguishability count.
  size_t zero_indistinguishable = 0;
  double avg_interval_width = 0;
};

/// Runs the interval attack: extract intervals, tighten to a fixpoint, then
/// derive every pattern over every released lattice (same enumeration as the
/// intra-window breach finder) and examine only patterns whose TRUE support
/// lies in (0, K] (supplied via \p ground_truth_breaches so the report
/// speaks about actual vulnerable patterns).
SanitizedAttackReport AttackSanitizedRelease(
    const SanitizedOutput& release, const NoiseModel& noise,
    const std::vector<InferredPattern>& ground_truth_breaches);

}  // namespace butterfly

#endif  // BUTTERFLY_METRICS_SANITIZED_ATTACK_H_
