#include "metrics/privacy_metrics.h"

#include "inference/inclusion_exclusion.h"

namespace butterfly {

namespace {

PrivacyEvaluation EvaluateWithProvider(
    const std::vector<InferredPattern>& ground_truth_breaches,
    const RealSupportProvider& provider) {
  PrivacyEvaluation eval;
  if (ground_truth_breaches.empty()) return eval;

  double total = 0.0;
  for (const InferredPattern& breach : ground_truth_breaches) {
    std::optional<double> estimate =
        DerivePatternEstimate(provider, breach.pattern);
    if (!estimate) {
      ++eval.unestimable_patterns;
      continue;
    }
    double truth = static_cast<double>(breach.inferred_support);
    double err = truth - *estimate;
    total += (err * err) / (truth * truth);
    ++eval.evaluated_patterns;
  }
  if (eval.evaluated_patterns > 0) {
    eval.avg_prig = total / static_cast<double>(eval.evaluated_patterns);
  }
  return eval;
}

}  // namespace

PrivacyEvaluation EvaluatePrivacy(
    const std::vector<InferredPattern>& ground_truth_breaches,
    const SanitizedOutput& release) {
  return EvaluateWithProvider(ground_truth_breaches,
                              release.AsEstimatorProvider());
}

PrivacyEvaluation EvaluatePrivacyWithKnowledgePoints(
    const std::vector<InferredPattern>& ground_truth_breaches,
    const SanitizedOutput& release,
    const std::unordered_map<Itemset, Support, ItemsetHash>& knowledge_points) {
  RealSupportProvider base = release.AsEstimatorProvider();
  RealSupportProvider provider =
      [&base, &knowledge_points](const Itemset& s) -> std::optional<double> {
    auto it = knowledge_points.find(s);
    if (it != knowledge_points.end()) return static_cast<double>(it->second);
    return base(s);
  };
  return EvaluateWithProvider(ground_truth_breaches, provider);
}

PrivacyEvaluation EvaluateAveragingAttack(
    const std::vector<InferredPattern>& ground_truth_breaches,
    const std::vector<SanitizedOutput>& releases) {
  PrivacyEvaluation eval;
  if (releases.empty()) return eval;

  // Average the bias-corrected observation of each itemset over the
  // releases; an itemset must be estimable in every release to average.
  std::vector<RealSupportProvider> providers;
  providers.reserve(releases.size());
  for (const SanitizedOutput& release : releases) {
    providers.push_back(release.AsEstimatorProvider());
  }
  RealSupportProvider averaged =
      [&providers](const Itemset& s) -> std::optional<double> {
    double sum = 0;
    for (const RealSupportProvider& p : providers) {
      std::optional<double> v = p(s);
      if (!v) return std::nullopt;
      sum += *v;
    }
    return sum / static_cast<double>(providers.size());
  };
  return EvaluateWithProvider(ground_truth_breaches, averaged);
}

}  // namespace butterfly
