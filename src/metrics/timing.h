/// \file timing.h
/// \brief Wall-clock timing helpers for the overhead experiments (Fig. 8
/// splits per-window cost into Mining alg / Basic / Opt).

#ifndef BUTTERFLY_METRICS_TIMING_H_
#define BUTTERFLY_METRICS_TIMING_H_

#include <chrono>

namespace butterfly {

/// A steady-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulated per-stage time of a stream run (seconds).
struct StageTimes {
  double mining = 0;        ///< Moment window maintenance + output walk
  double perturbation = 0;  ///< noise drawing + cache (the "Basic" part)
  double optimization = 0;  ///< FEC partition + bias setting (the "Opt" part)

  StageTimes& operator+=(const StageTimes& other) {
    mining += other.mining;
    perturbation += other.perturbation;
    optimization += other.optimization;
    return *this;
  }
};

}  // namespace butterfly

#endif  // BUTTERFLY_METRICS_TIMING_H_
