/// \file auditor.h
/// \brief A pre-publication safety gate: given the raw window output and the
/// sanitized release about to go out, verify every promise Butterfly makes —
/// before the release leaves the system.
///
/// The engine enforces the budgets by construction; the auditor re-derives
/// them independently (different code path, belt and braces), which is what
/// a deployment with compliance requirements actually wants:
///   1. completeness: the release covers exactly the raw frequent itemsets;
///   2. precision: per-itemset (T̃ − T)² within the uncertainty region and
///      the (β² + σ²) ≤ εT² budget honored by the metadata;
///   3. privacy: the Kerckhoffs interval attack pins no vulnerable pattern;
///   4. consistency: republished values match the prior release wherever the
///      true support is unchanged (if a prior release is supplied).

#ifndef BUTTERFLY_METRICS_AUDITOR_H_
#define BUTTERFLY_METRICS_AUDITOR_H_

#include <string>
#include <vector>

#include "core/butterfly.h"
#include "core/config.h"
#include "core/noise.h"
#include "core/sanitized_output.h"
#include "mining/mining_result.h"

namespace butterfly {

struct AuditReport {
  bool passed = true;
  std::vector<std::string> violations;

  /// Informational: inferable vulnerable patterns in the raw output and the
  /// average sound interval width the adversary is left with.
  size_t vulnerable_patterns = 0;
  double avg_adversary_interval_width = 0;

  void Violate(std::string what) {
    passed = false;
    violations.push_back(std::move(what));
  }
};

/// Audits one release against its raw output under \p config.
/// \p previous_raw / \p previous_release (both may be null) enable the
/// republish-consistency check.
AuditReport AuditRelease(const MiningOutput& raw,
                         const SanitizedOutput& release,
                         const ButterflyConfig& config,
                         const MiningOutput* previous_raw = nullptr,
                         const SanitizedOutput* previous_release = nullptr);

/// Audit-driven redraw. Bounded uniform noise has hard edges, so an unlucky
/// draw can produce a release whose interval-constraint system provably pins
/// a vulnerable pattern to its true value — a worst-case disclosure the
/// paper's variance-level analysis does not rule out (our auditor surfaces
/// it; at the paper's default parameters it is rare, in tight regimes — low
/// C, small K, dense windows — it is not). This helper sanitizes, audits,
/// and on residual breaches discards the draw (ButterflyEngine::
/// ForgetPinnedValues) and retries, up to \p max_attempts. The returned
/// release is the first clean one, or the last attempt (with \p report
/// showing the failure) if none was.
///
/// Caveat, stated plainly: rejection conditions the published distribution
/// on "no pin", which an adversary aware of the policy could exploit in
/// principle; the second-order leak is tiny next to the first-order one it
/// removes, but a deployment should document the policy either way.
SanitizedOutput SanitizeUntilClean(ButterflyEngine* engine,
                                   const MiningOutput& raw,
                                   Support window_size, size_t max_attempts,
                                   AuditReport* report);

}  // namespace butterfly

#endif  // BUTTERFLY_METRICS_AUDITOR_H_
