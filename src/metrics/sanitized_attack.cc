#include "metrics/sanitized_attack.h"

#include "common/bits.h"

namespace butterfly {

IntervalMap IntervalKnowledgeFromRelease(const SanitizedOutput& release,
                                         const NoiseModel& noise) {
  IntervalMap knowledge;
  knowledge[Itemset{}] = Interval::Exact(release.window_size());
  for (const SanitizedItemset& item : release.items()) {
    DiscreteUniform region = noise.Centered(item.bias);
    // T̃ = T + r with r ∈ [lo, hi]  =>  T ∈ [T̃ − hi, T̃ − lo].
    knowledge[item.itemset] =
        Interval(item.sanitized_support - region.hi(),
                 item.sanitized_support - region.lo())
            .ClampNonNegative();
  }
  return knowledge;
}

std::optional<Interval> DerivePatternInterval(const IntervalMap& knowledge,
                                              const Pattern& pattern) {
  const Itemset& base = pattern.positive();
  const Itemset& negated = pattern.negated();
  if (negated.size() >= 31) return std::nullopt;
  Interval total = Interval::Exact(0);
  for (uint32_t mask = 0; mask < (1u << negated.size()); ++mask) {
    std::vector<Item> items(base.items());
    for (size_t b = 0; b < negated.size(); ++b) {
      if (mask & (1u << b)) items.push_back(negated[b]);
    }
    auto it = knowledge.find(Itemset(std::move(items)));
    if (it == knowledge.end()) return std::nullopt;
    if (EvenParity(mask)) {
      total = total.Plus(it->second);
    } else {
      total = total.MinusInterval(it->second);
    }
  }
  // A support is non-negative whatever the intervals say.
  return total.ClampNonNegative();
}

SanitizedAttackReport AttackSanitizedRelease(
    const SanitizedOutput& release, const NoiseModel& noise,
    const std::vector<InferredPattern>& ground_truth_breaches) {
  IntervalMap knowledge = IntervalKnowledgeFromRelease(release, noise);
  TightenIntervals(&knowledge);

  SanitizedAttackReport report;
  double width_total = 0;
  for (const InferredPattern& breach : ground_truth_breaches) {
    std::optional<Interval> interval =
        DerivePatternInterval(knowledge, breach.pattern);
    if (!interval) continue;
    ++report.patterns_examined;
    width_total += static_cast<double>(interval->Width());
    if (interval->Tight() && interval->lo == breach.inferred_support) {
      ++report.residual_breaches;
    }
    if (interval->Contains(0)) ++report.zero_indistinguishable;
  }
  if (report.patterns_examined > 0) {
    report.avg_interval_width =
        width_total / static_cast<double>(report.patterns_examined);
  }
  return report;
}

}  // namespace butterfly
