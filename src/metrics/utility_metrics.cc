#include "metrics/utility_metrics.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace butterfly {

namespace {

struct PairView {
  Support true_support;
  Support sanitized_support;
};

// Collects (T, T̃) for every released itemset that the truth also knows.
std::vector<PairView> CollectPairs(const MiningOutput& truth,
                                   const SanitizedOutput& release) {
  std::vector<PairView> views;
  views.reserve(release.size());
  for (const SanitizedItemset& item : release.items()) {
    std::optional<Support> t = truth.SupportOf(item.itemset);
    assert(t.has_value());
    if (!t) continue;
    views.push_back(PairView{*t, item.sanitized_support});
  }
  return views;
}

}  // namespace

double AvgPred(const MiningOutput& truth, const SanitizedOutput& release) {
  std::vector<PairView> views = CollectPairs(truth, release);
  if (views.empty()) return 0.0;
  double total = 0.0;
  for (const PairView& v : views) {
    double err = static_cast<double>(v.sanitized_support - v.true_support);
    double t = static_cast<double>(v.true_support);
    total += (err * err) / (t * t);
  }
  return total / static_cast<double>(views.size());
}

double Ropp(const MiningOutput& truth, const SanitizedOutput& release) {
  std::vector<PairView> views = CollectPairs(truth, release);
  if (views.size() < 2) return 1.0;
  size_t preserved = 0;
  size_t total = 0;
  for (size_t i = 0; i < views.size(); ++i) {
    for (size_t j = i + 1; j < views.size(); ++j) {
      ++total;
      if (views[i].true_support == views[j].true_support) {
        // A tie is the relationship FECs exist to preserve: it survives iff
        // the sanitized supports are still equal.
        if (views[i].sanitized_support == views[j].sanitized_support) {
          ++preserved;
        }
        continue;
      }
      const PairView& lo =
          views[i].true_support < views[j].true_support ? views[i] : views[j];
      const PairView& hi =
          views[i].true_support < views[j].true_support ? views[j] : views[i];
      if (lo.sanitized_support <= hi.sanitized_support) ++preserved;
    }
  }
  return static_cast<double>(preserved) / static_cast<double>(total);
}

double Rrpp(const MiningOutput& truth, const SanitizedOutput& release,
            double k) {
  std::vector<PairView> views = CollectPairs(truth, release);
  if (views.size() < 2) return 1.0;
  size_t preserved = 0;
  size_t total = 0;
  for (size_t i = 0; i < views.size(); ++i) {
    for (size_t j = i + 1; j < views.size(); ++j) {
      ++total;
      if (views[i].true_support == views[j].true_support) {
        // True ratio is exactly 1; orient the sanitized ratio at <= 1 so the
        // band test is well defined for tied pairs.
        Support a = views[i].sanitized_support;
        Support b = views[j].sanitized_support;
        if (a <= 0 || b <= 0) continue;
        double ratio = static_cast<double>(std::min(a, b)) /
                       static_cast<double>(std::max(a, b));
        if (ratio + 1e-12 >= k) ++preserved;
        continue;
      }
      const PairView& lo =
          views[i].true_support < views[j].true_support ? views[i] : views[j];
      const PairView& hi =
          views[i].true_support < views[j].true_support ? views[j] : views[i];
      double true_ratio = static_cast<double>(lo.true_support) /
                          static_cast<double>(hi.true_support);
      if (hi.sanitized_support <= 0) continue;  // ratio meaningless
      double sanitized_ratio = static_cast<double>(lo.sanitized_support) /
                               static_cast<double>(hi.sanitized_support);
      if (sanitized_ratio + 1e-12 >= k * true_ratio &&
          sanitized_ratio <= true_ratio / k + 1e-12) {
        ++preserved;
      }
    }
  }
  return static_cast<double>(preserved) / static_cast<double>(total);
}

}  // namespace butterfly
